//===- tests/UpdateEngineTest.cpp - Update-engine correctness tests -------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Covers the contention-aware update engine (sched/UpdateEngine.h) and the
// conflict-combined atomic primitives (simd/Atomics.h):
//  * per-backend conflict detection and same-index combining semantics
//    (scalar lane loop and vpconflictd must agree bit-for-bit);
//  * the float-combining reassociation bound;
//  * FloatAccumEngine policy equivalence (Atomic == Combined == Privatized
//    == Blocked up to float reassociation);
//  * Bořůvka's combined 64-bit min;
//  * kernel-vs-reference parity for the cmpxchg-heavy kernels under every
//    UpdatePolicy x SchedPolicy;
//  * parseUpdatePolicy's exit(2) contract.
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "kernels/Kernels.h"
#include "sched/UpdateEngine.h"
#include "simd/Atomics.h"
#include "simd/Targets.h"
#include "support/CpuInfo.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

using namespace egacs;
using namespace egacs::simd;

namespace {

/// Runtime guard: AVX backends are compiled whenever the toolchain supports
/// them, but must not execute on a CPU that lacks the ISA.
template <typename BK> bool backendRunnable() {
  std::string Name = BK::Name;
  if (Name.find("avx512") != std::string::npos)
    return cpuInfo().HasAvx512f;
  if (Name.find("avx2") != std::string::npos)
    return cpuInfo().HasAvx2;
  return true;
}

//===----------------------------------------------------------------------===//
// parseUpdatePolicy contract.
//===----------------------------------------------------------------------===//

TEST(UpdatePolicyParse, RoundTrips) {
  const UpdatePolicy Policies[] = {UpdatePolicy::Atomic,
                                   UpdatePolicy::Combined,
                                   UpdatePolicy::Privatized,
                                   UpdatePolicy::Blocked};
  for (UpdatePolicy P : Policies)
    EXPECT_EQ(parseUpdatePolicy(updatePolicyName(P)), P);
}

TEST(UpdatePolicyParse, UnknownNameExitsNonZero) {
  EXPECT_EXIT(parseUpdatePolicy("bogus"), ::testing::ExitedWithCode(2),
              "unknown update policy");
}

//===----------------------------------------------------------------------===//
// Per-backend conflict combining (typed over every compiled backend).
//===----------------------------------------------------------------------===//

template <typename BK> class ConflictCombineTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!backendRunnable<BK>())
      GTEST_SKIP() << BK::Name << " not supported on this CPU";
  }
};

using AllBackends = ::testing::Types<ScalarBackend<1>, ScalarBackend<4>,
                                     ScalarBackend<8>, ScalarBackend<16>
#ifdef EGACS_HAVE_AVX2
                                     ,
                                     Avx2HalfBackend, Avx2Backend,
                                     Avx2PumpedBackend
#endif
#ifdef EGACS_HAVE_AVX512
                                     ,
                                     Avx512HalfBackend, Avx512Backend
#endif
                                     >;
TYPED_TEST_SUITE(ConflictCombineTest, AllBackends);

/// The conflict-detection hook (vpconflictd on AVX512, a lane loop
/// elsewhere) must produce exactly the earlier-equal-lane bitmasks.
TYPED_TEST(ConflictCombineTest, ConflictDetectMatchesReference) {
  using BK = TypeParam;
  constexpr int W = BK::Width;
  Xoshiro256 Rng(101);
  for (int Round = 0; Round < 64; ++Round) {
    alignas(64) std::int32_t IdxA[W];
    for (int L = 0; L < W; ++L)
      IdxA[L] = static_cast<std::int32_t>(Rng.nextBounded(5));
    VInt<BK> Idx = load<BK>(IdxA);
    std::uint32_t Got[W];
    detail::ConflictDetect<BK>::run(Idx.V, Got);
    for (int L = 0; L < W; ++L) {
      std::uint32_t Want = 0;
      for (int E = 0; E < L; ++E)
        if (IdxA[E] == IdxA[L])
          Want |= 1u << E;
      EXPECT_EQ(Got[L], Want) << BK::Name << " lane " << L;
    }
  }
}

/// All lanes targeting one destination: the float combiner must issue a
/// single hardware CAS carrying the full in-register sum.
TYPED_TEST(ConflictCombineTest, AllLanesSameIndexFloatAdd) {
  using BK = TypeParam;
  constexpr int W = BK::Width;
  alignas(64) float Base[8] = {};
  alignas(64) float ValA[W];
  float Want = 0.0f;
  for (int L = 0; L < W; ++L) {
    ValA[L] = static_cast<float>(L + 1) * 0.25f;
    Want += ValA[L];
  }
#ifdef EGACS_STATS
  statsReset();
#endif
  atomicAddVectorFCombined<BK>(Base, splat<BK>(3), loadF<BK>(ValA),
                               maskAll<BK>());
  EXPECT_FLOAT_EQ(Base[3], Want);
  for (int I = 0; I < 8; ++I)
    if (I != 3)
      EXPECT_EQ(Base[I], 0.0f);
#ifdef EGACS_STATS
  if (W > 1) {
    EXPECT_EQ(statGet(Stat::CasAttempts), 1u) << BK::Name;
    EXPECT_EQ(statGet(Stat::CombinedLanesSaved),
              static_cast<std::uint64_t>(W - 1))
        << BK::Name;
  }
#endif
}

/// All lanes targeting one destination: the min combiner must issue one
/// CAS and mark exactly the lane holding the minimum as the winner.
TYPED_TEST(ConflictCombineTest, AllLanesSameIndexMinMarksMinLane) {
  using BK = TypeParam;
  constexpr int W = BK::Width;
  alignas(64) std::int32_t Base[8];
  for (int I = 0; I < 8; ++I)
    Base[I] = 100;
  alignas(64) std::int32_t ValA[W];
  for (int L = 0; L < W; ++L)
    ValA[L] = 50 - L; // strictly decreasing: the minimum sits in lane W-1
#ifdef EGACS_STATS
  statsReset();
#endif
  VMask<BK> Won = atomicMinVectorCombined<BK>(Base, splat<BK>(5),
                                              load<BK>(ValA), maskAll<BK>());
  EXPECT_EQ(Base[5], 50 - (W - 1));
  EXPECT_EQ(maskBits(Won), std::uint64_t(1) << (W - 1)) << BK::Name;
#ifdef EGACS_STATS
  if (W > 1)
    EXPECT_EQ(statGet(Stat::CasAttempts), 1u) << BK::Name;
#endif
  // Losing relaxation: nothing shrinks, nobody wins.
  VMask<BK> Lost = atomicMinVectorCombined<BK>(Base, splat<BK>(5),
                                               splat<BK>(99), maskAll<BK>());
  EXPECT_EQ(maskBits(Lost), 0u);
  EXPECT_EQ(Base[5], 50 - (W - 1));
}

/// Random duplicate patterns: combined-min must leave memory identical to
/// the per-lane loop and win exactly the same destination *set*.
TYPED_TEST(ConflictCombineTest, MixedDuplicateMinMatchesPerLaneLoop) {
  using BK = TypeParam;
  constexpr int W = BK::Width;
  Xoshiro256 Rng(7);
  for (int Round = 0; Round < 128; ++Round) {
    std::int32_t PerLane[16], Combined[16];
    for (int I = 0; I < 16; ++I)
      PerLane[I] = Combined[I] =
          static_cast<std::int32_t>(Rng.nextBounded(60));
    alignas(64) std::int32_t IdxA[W], ValA[W];
    for (int L = 0; L < W; ++L) {
      IdxA[L] = static_cast<std::int32_t>(Rng.nextBounded(16));
      ValA[L] = static_cast<std::int32_t>(Rng.nextBounded(80));
    }
    std::uint64_t Bits =
        Rng.nextBounded(std::uint64_t(1) << W); // any lane subset
    VMask<BK> M = maskFromBits<BK>(Bits);
    VInt<BK> Idx = load<BK>(IdxA);
    VInt<BK> Val = load<BK>(ValA);

    VMask<BK> WonA = atomicMinVector<BK>(PerLane, Idx, Val, M);
    VMask<BK> WonC = atomicMinVectorCombined<BK>(Combined, Idx, Val, M);

    for (int I = 0; I < 16; ++I)
      EXPECT_EQ(PerLane[I], Combined[I]) << BK::Name << " round " << Round;

    std::set<std::int32_t> DstA, DstC;
    std::uint64_t BA = maskBits(WonA), BC = maskBits(WonC);
    for (int L = 0; L < W; ++L) {
      if ((BA >> L) & 1)
        DstA.insert(IdxA[L]);
      if ((BC >> L) & 1)
        DstC.insert(IdxA[L]);
    }
    EXPECT_EQ(DstA, DstC) << BK::Name << " round " << Round;
    // Combined wins at most once per destination, and the winning lane's
    // value is the value now in memory.
    for (int L = 0; L < W; ++L)
      if ((BC >> L) & 1)
        EXPECT_EQ(Combined[IdxA[L]], ValA[L]) << BK::Name;
  }
}

/// Random duplicate patterns for float adds: identical destinations, sums
/// equal up to the recursive-summation reassociation bound.
TYPED_TEST(ConflictCombineTest, MixedDuplicateFloatAddWithinBound) {
  using BK = TypeParam;
  constexpr int W = BK::Width;
  Xoshiro256 Rng(13);
  for (int Round = 0; Round < 128; ++Round) {
    float PerLane[16] = {}, Combined[16] = {};
    alignas(64) std::int32_t IdxA[W];
    alignas(64) float ValA[W];
    float AbsSum = 0.0f;
    for (int L = 0; L < W; ++L) {
      IdxA[L] = static_cast<std::int32_t>(Rng.nextBounded(16));
      ValA[L] = static_cast<float>(Rng.nextBounded(2000)) / 16.0f - 60.0f;
      AbsSum += std::fabs(ValA[L]);
    }
    std::uint64_t Bits = Rng.nextBounded(std::uint64_t(1) << W);
    VMask<BK> M = maskFromBits<BK>(Bits);
    atomicAddVectorF<BK>(PerLane, load<BK>(IdxA), loadF<BK>(ValA), M);
    atomicAddVectorFCombined<BK>(Combined, load<BK>(IdxA), loadF<BK>(ValA),
                                 M);
    // (W-1) * eps * sum|v|: the recursive-summation error bound for at
    // most W reassociated terms (Higham, Accuracy and Stability, ch. 4).
    float Tol = static_cast<float>(W) * 1.2e-7f * AbsSum + 1e-12f;
    for (int I = 0; I < 16; ++I)
      EXPECT_NEAR(PerLane[I], Combined[I], Tol)
          << BK::Name << " round " << Round << " slot " << I;
  }
}

//===----------------------------------------------------------------------===//
// Float reassociation bound, documented.
//===----------------------------------------------------------------------===//

/// Documents the tolerance contract of combined float accumulation: with K
/// lanes folded into one destination, the in-register pre-sum reassociates
/// the addition chain, and |combined - perlane| <= (K-1) * eps * sum|v|
/// (standard recursive-summation bound). PR's verifier tolerance (1e-4
/// relative) dominates this by orders of magnitude at W <= 16.
TEST(FloatCombining, ReassociationBoundDocumented) {
  using BK = ScalarBackend<16>;
  constexpr int W = BK::Width;
  constexpr float Eps = 1.19209290e-7f; // FLT_EPSILON
  Xoshiro256 Rng(42);
  for (int Round = 0; Round < 1000; ++Round) {
    alignas(64) float ValA[W];
    float AbsSum = 0.0f;
    for (int L = 0; L < W; ++L) {
      // Mixed magnitudes make reassociation error visible.
      float Mag = static_cast<float>(1 << Rng.nextBounded(12));
      ValA[L] = (static_cast<float>(Rng.nextBounded(1000)) / 500.0f - 1.0f) *
                Mag;
      AbsSum += std::fabs(ValA[L]);
    }
    float PerLane[4] = {}, Combined[4] = {};
    atomicAddVectorF<BK>(PerLane, splat<BK>(1), loadF<BK>(ValA),
                         maskAll<BK>());
    atomicAddVectorFCombined<BK>(Combined, splat<BK>(1), loadF<BK>(ValA),
                                 maskAll<BK>());
    float Bound = static_cast<float>(W - 1) * Eps * AbsSum;
    EXPECT_LE(std::fabs(PerLane[1] - Combined[1]), Bound + 1e-12f)
        << "round " << Round;
  }
}

//===----------------------------------------------------------------------===//
// FloatAccumEngine: all four policies agree (up to reassociation).
//===----------------------------------------------------------------------===//

TEST(FloatAccumEngine, AllPoliciesAgreeAfterMerge) {
  using BK = ScalarBackend<8>;
  constexpr int W = BK::Width;
  const std::int64_t N = 1000;
  const int NumTasks = 4;
  Xoshiro256 Rng(3);

  // One shared scatter script: (task, idx, val) triples.
  struct Op {
    int Task;
    std::int32_t Idx[W];
    float Val[W];
    std::uint64_t Mask;
  };
  std::vector<Op> Script;
  std::vector<double> Want(static_cast<std::size_t>(N), 0.0);
  for (int I = 0; I < 600; ++I) {
    Op O;
    O.Task = static_cast<int>(Rng.nextBounded(NumTasks));
    // Skew destinations toward a hub so conflicts and bins both trigger.
    for (int L = 0; L < W; ++L) {
      O.Idx[L] = Rng.nextBounded(4) == 0
                     ? 7
                     : static_cast<std::int32_t>(Rng.nextBounded(
                           static_cast<std::uint64_t>(N)));
      O.Val[L] = static_cast<float>(Rng.nextBounded(100)) / 8.0f;
    }
    O.Mask = Rng.nextBounded(std::uint64_t(1) << W);
    Script.push_back(O);
    for (int L = 0; L < W; ++L)
      if ((O.Mask >> L) & 1)
        Want[static_cast<std::size_t>(O.Idx[L])] +=
            static_cast<double>(O.Val[L]);
  }

  const UpdatePolicy Policies[] = {UpdatePolicy::Atomic,
                                   UpdatePolicy::Combined,
                                   UpdatePolicy::Privatized,
                                   UpdatePolicy::Blocked};
  for (UpdatePolicy P : Policies) {
    std::vector<float> Global(static_cast<std::size_t>(N), 0.0f);
    FloatAccumEngine Eng(P, N, NumTasks, /*BlockNodes=*/128,
                         /*Instrument=*/false);
    EXPECT_EQ(Eng.policy(), P);
    EXPECT_EQ(Eng.needsMerge(), P == UpdatePolicy::Privatized ||
                                    P == UpdatePolicy::Blocked);
    for (const Op &O : Script)
      Eng.add<BK>(Global.data(), O.Task, load<BK>(O.Idx), loadF<BK>(O.Val),
                  maskFromBits<BK>(O.Mask));
    if (Eng.needsMerge()) {
      LoopScheduler Sched(SchedPolicy::Static, NumTasks, 64, false, N);
      for (int T = 0; T < NumTasks; ++T)
        Eng.merge(Global.data(), Sched, T, NumTasks);
    }
    for (std::int64_t I = 0; I < N; ++I)
      EXPECT_NEAR(static_cast<double>(Global[static_cast<std::size_t>(I)]),
                  Want[static_cast<std::size_t>(I)],
                  1e-3 + 1e-5 * std::fabs(Want[static_cast<std::size_t>(I)]))
          << updatePolicyName(P) << " slot " << I;
  }
}

/// Two scatter/merge rounds: the merge pass must leave the private state
/// clean for the next round (PR iterates dozens of rounds).
TEST(FloatAccumEngine, MergeResetsStagedStateBetweenRounds) {
  using BK = ScalarBackend<4>;
  const std::int64_t N = 64;
  const int NumTasks = 2;
  for (UpdatePolicy P :
       {UpdatePolicy::Privatized, UpdatePolicy::Blocked}) {
    std::vector<float> Global(static_cast<std::size_t>(N), 0.0f);
    FloatAccumEngine Eng(P, N, NumTasks, /*BlockNodes=*/16, false);
    LoopScheduler Sched(SchedPolicy::Static, NumTasks, 16, false, N);
    for (int Round = 0; Round < 2; ++Round) {
      const std::int32_t Idx[4] = {5, 5, 20, 63};
      const float Val[4] = {1.0f, 2.0f, 3.0f, 4.0f};
      Eng.add<BK>(Global.data(), /*TaskIdx=*/Round % NumTasks,
                  load<BK>(Idx), loadF<BK>(Val), maskAll<BK>());
      for (int T = 0; T < NumTasks; ++T)
        Eng.merge(Global.data(), Sched, T, NumTasks);
    }
    EXPECT_FLOAT_EQ(Global[5], 2.0f * 3.0f);
    EXPECT_FLOAT_EQ(Global[20], 2.0f * 3.0f);
    EXPECT_FLOAT_EQ(Global[63], 2.0f * 4.0f);
  }
}

//===----------------------------------------------------------------------===//
// Bořůvka's combined 64-bit min.
//===----------------------------------------------------------------------===//

TEST(UpdateMin64Combined, MatchesPerLaneLoop) {
  Xoshiro256 Rng(17);
  for (int Round = 0; Round < 256; ++Round) {
    std::int64_t PerLane[8], Combined[8];
    for (int I = 0; I < 8; ++I)
      PerLane[I] = Combined[I] =
          static_cast<std::int64_t>(Rng.nextBounded(1000)) << 32;
    std::int32_t Comp[16];
    std::int64_t Packed[16];
    for (int L = 0; L < 16; ++L) {
      Comp[L] = static_cast<std::int32_t>(Rng.nextBounded(8));
      Packed[L] = (static_cast<std::int64_t>(Rng.nextBounded(1200)) << 32) |
                  static_cast<std::int64_t>(L);
    }
    std::uint64_t Bits = Rng.nextBounded(std::uint64_t(1) << 16);

    std::uint64_t Tmp = Bits;
    while (Tmp) {
      int L = __builtin_ctzll(Tmp);
      Tmp &= Tmp - 1;
      atomicMinGlobal64(&PerLane[Comp[L]], Packed[L]);
    }
    updateMin64Combined(Combined, Comp, Packed, Bits);
    for (int I = 0; I < 8; ++I)
      EXPECT_EQ(PerLane[I], Combined[I]) << "round " << Round;
  }
}

//===----------------------------------------------------------------------===//
// Kernel-vs-reference parity: UpdatePolicy x SchedPolicy.
//===----------------------------------------------------------------------===//

struct UpdateParityCase {
  KernelKind Kernel;
  UpdatePolicy Update;
  SchedPolicy Sched;
};

class UpdateParity : public ::testing::TestWithParam<UpdateParityCase> {};

TEST_P(UpdateParity, MatchesReference) {
  const UpdateParityCase &C = GetParam();
  ThreadPoolTaskSystem Pool(4);
  KernelConfig Cfg = KernelConfig::allOptimizations(Pool, 4);
  Cfg.Update = C.Update;
  Cfg.Sched = C.Sched;
  Cfg.ChunkSize = 64; // small enough to exercise chunking on test graphs
  Cfg.Delta = 512;
  Cfg.UpdateBlockNodes = 128; // several bins even at test scale

  TargetKind Target = targetSupported(TargetKind::Avx512x16)
                          ? TargetKind::Avx512x16
                          : TargetKind::Scalar8;
  Csr G = rmatGraph(/*Scale=*/9, /*EdgeFactor=*/6, /*Seed=*/9);
  if (kernelNeedsSortedAdjacency(C.Kernel))
    G = G.sortedByDestination();
  KernelOutput Out = runKernel(C.Kernel, Target, G, Cfg, /*Source=*/0);
  EXPECT_TRUE(verifyKernelOutput(C.Kernel, G, 0, Out, Cfg))
      << kernelName(C.Kernel) << " update=" << updatePolicyName(C.Update)
      << " sched=" << schedPolicyName(C.Sched);
}

std::vector<UpdateParityCase> updateParityCases() {
  const KernelKind Kernels[] = {KernelKind::Pr, KernelKind::Cc,
                                KernelKind::SsspNf, KernelKind::Mst,
                                KernelKind::BfsWl};
  const UpdatePolicy Updates[] = {UpdatePolicy::Atomic,
                                  UpdatePolicy::Combined,
                                  UpdatePolicy::Privatized,
                                  UpdatePolicy::Blocked};
  const SchedPolicy Scheds[] = {SchedPolicy::Static, SchedPolicy::Chunked,
                                SchedPolicy::Stealing};
  std::vector<UpdateParityCase> Cases;
  for (KernelKind K : Kernels)
    for (UpdatePolicy U : Updates)
      for (SchedPolicy S : Scheds)
        Cases.push_back({K, U, S});
  return Cases;
}

std::string
updateParityName(const ::testing::TestParamInfo<UpdateParityCase> &Info) {
  std::string Name = kernelName(Info.param.Kernel);
  Name += "_";
  Name += updatePolicyName(Info.param.Update);
  Name += "_";
  Name += schedPolicyName(Info.param.Sched);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(PolicyGrid, UpdateParity,
                         ::testing::ValuesIn(updateParityCases()),
                         updateParityName);

#ifdef EGACS_STATS
//===----------------------------------------------------------------------===//
// Engine instrumentation: the new counters are live.
//===----------------------------------------------------------------------===//

TEST(UpdateEngineStats, ScatterAndMergeCritPathsRecorded) {
  ThreadPoolTaskSystem Pool(4);
  KernelConfig Cfg = KernelConfig::allOptimizations(Pool, 4);
  Cfg.Update = UpdatePolicy::Blocked;
  Cfg.UpdateBlockNodes = 128;
  Cfg.SchedInstrument = true;
  Csr G = rmatGraph(/*Scale=*/9, /*EdgeFactor=*/6, /*Seed=*/9);
  statsReset();
  KernelOutput Out =
      runKernel(KernelKind::Pr, TargetKind::Scalar8, G, Cfg, 0);
  EXPECT_TRUE(verifyKernelOutput(KernelKind::Pr, G, 0, Out, Cfg));
  EXPECT_GT(statGet(Stat::UpdatePairsBinned), 0u);
  EXPECT_GT(statGet(Stat::UpdateScatterCritNanos), 0u);
  EXPECT_GT(statGet(Stat::UpdateMergeCritNanos), 0u);
  // Blocked PR's contribution scatter issues no CAS chains at all, and the
  // residual reduction is a per-task plain store reduced serially in the
  // advance, so a Blocked pr run is CAS-free end to end.
  EXPECT_EQ(statGet(Stat::CasAttempts), 0u);
}

TEST(UpdateEngineStats, CombinedSavesLanesOnHubGraph) {
  ThreadPoolTaskSystem Pool(2);
  KernelConfig Cfg = KernelConfig::allOptimizations(Pool, 2);
  Cfg.Update = UpdatePolicy::Combined;
  Csr G = starGraph(33); // every edge targets the hub: maximal duplicates
  statsReset();
  KernelOutput Out =
      runKernel(KernelKind::Pr, TargetKind::Scalar8, G, Cfg, 0);
  EXPECT_TRUE(verifyKernelOutput(KernelKind::Pr, G, 0, Out, Cfg));
  EXPECT_GT(statGet(Stat::CombinedLanesSaved), 0u);
}
#endif // EGACS_STATS

} // namespace
