//===- tests/BaselinesTest.cpp - Baseline framework correctness -----------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// The mini-Ligra and scalar-parallel baselines must produce exactly the
// same outputs as the serial oracles; otherwise the Fig 4 comparison would
// be comparing wrong programs.
//
//===----------------------------------------------------------------------===//

#include "baselines/ligra/Apps.h"
#include "baselines/scalar/ScalarKernels.h"
#include "graph/Generators.h"
#include "kernels/Reference.h"

#include <gtest/gtest.h>

using namespace egacs;

namespace {

struct BaselineCase {
  std::string Graph;
  int NumTasks;
};

Csr makeGraph(const std::string &Name) {
  if (Name == "road")
    return roadGraph(20, 15, 0.05, 3);
  if (Name == "rmat")
    return rmatGraph(9, 6, 17);
  if (Name == "random")
    return uniformRandomGraph(1200, 4, 23);
  ADD_FAILURE() << "unknown graph " << Name;
  return pathGraph(2);
}

class LigraApps : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(LigraApps, MatchReference) {
  const BaselineCase &C = GetParam();
  Csr G = makeGraph(C.Graph);
  ThreadPoolTaskSystem Pool(C.NumTasks);
  ligra::LigraContext Ctx{&Pool, C.NumTasks, 20};

  EXPECT_EQ(ligra::ligraBfs(Ctx, G, 0), refBfs(G, 0));
  EXPECT_EQ(ligra::ligraSssp(Ctx, G, 0), refSssp(G, 0));
  EXPECT_EQ(ligra::ligraCc(Ctx, G), refConnectedComponents(G));
  EXPECT_TRUE(isValidMis(G, ligra::ligraMis(Ctx, G)));

  std::vector<float> Pr = ligra::ligraPr(Ctx, G, 0.85f, 1e-4f, 50);
  std::vector<float> Ref = refPageRank(G, 0.85f, 1e-4f, 50);
  ASSERT_EQ(Pr.size(), Ref.size());
  for (std::size_t I = 0; I < Pr.size(); ++I)
    EXPECT_NEAR(Pr[I], Ref[I], 1e-4f + 1e-2f * Ref[I]);
}

class ScalarKernels : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(ScalarKernels, MatchReference) {
  const BaselineCase &C = GetParam();
  Csr G = makeGraph(C.Graph);
  ThreadPoolTaskSystem Pool(C.NumTasks);
  scalar::ScalarContext Ctx{&Pool, C.NumTasks};

  EXPECT_EQ(scalar::scalarBfs(Ctx, G, 0), refBfs(G, 0));
  EXPECT_EQ(scalar::scalarSssp(Ctx, G, 0, 512), refSssp(G, 0));
  EXPECT_EQ(scalar::scalarCc(Ctx, G), refConnectedComponents(G));
  EXPECT_TRUE(isValidMis(G, scalar::scalarMis(Ctx, G)));
  EXPECT_EQ(scalar::scalarTri(Ctx, G.sortedByDestination()),
            refTriangleCount(G));

  std::int64_t Weight = 0, Edges = 0, RefW = 0, RefE = 0;
  scalar::scalarMst(Ctx, G, Weight, Edges);
  refMstWeight(G, RefW, RefE);
  EXPECT_EQ(Weight, RefW);
  EXPECT_EQ(Edges, RefE);

  std::vector<float> Pr = scalar::scalarPr(Ctx, G, 0.85f, 1e-4f, 50);
  std::vector<float> Ref = refPageRank(G, 0.85f, 1e-4f, 50);
  ASSERT_EQ(Pr.size(), Ref.size());
  for (std::size_t I = 0; I < Pr.size(); ++I)
    EXPECT_NEAR(Pr[I], Ref[I], 1e-4f + 1e-2f * Ref[I]);
}

std::string baselineCaseName(
    const ::testing::TestParamInfo<BaselineCase> &Info) {
  return Info.param.Graph + "_t" + std::to_string(Info.param.NumTasks);
}

INSTANTIATE_TEST_SUITE_P(GraphsAndTasks, LigraApps,
                         ::testing::Values(BaselineCase{"road", 1},
                                           BaselineCase{"road", 4},
                                           BaselineCase{"rmat", 4},
                                           BaselineCase{"random", 3}),
                         baselineCaseName);

INSTANTIATE_TEST_SUITE_P(GraphsAndTasks, ScalarKernels,
                         ::testing::Values(BaselineCase{"road", 1},
                                           BaselineCase{"road", 4},
                                           BaselineCase{"rmat", 4},
                                           BaselineCase{"random", 3}),
                         baselineCaseName);

//===----------------------------------------------------------------------===//
// VertexSubset and edgeMap unit tests.
//===----------------------------------------------------------------------===//

TEST(VertexSubset, SparseDenseRoundTrip) {
  ligra::VertexSubset S(10, std::vector<NodeId>{1, 3, 7});
  EXPECT_EQ(S.size(), 3);
  S.toDense();
  EXPECT_TRUE(S.hasDense());
  EXPECT_EQ(S.dense()[1], 1);
  EXPECT_EQ(S.dense()[2], 0);

  std::vector<std::uint8_t> Bits(10, 0);
  Bits[0] = Bits[9] = 1;
  ligra::VertexSubset D(10, std::move(Bits), 2);
  D.toSparse();
  EXPECT_EQ(D.sparse(), (std::vector<NodeId>{0, 9}));
}

TEST(VertexSubset, OutDegreeSum) {
  Csr G = starGraph(5); // center degree 5, leaves degree 1
  ligra::VertexSubset Center(G.numNodes(), 0);
  EXPECT_EQ(Center.outDegreeSum(G), 5);
  ligra::VertexSubset Leaves(G.numNodes(), std::vector<NodeId>{1, 2, 3});
  EXPECT_EQ(Leaves.outDegreeSum(G), 3);
}

TEST(EdgeMapDirection, DenseAndSparseAgree) {
  Csr G = rmatGraph(8, 8, 31);
  SerialTaskSystem TS;
  // Force sparse-only and dense-only traversals and compare BFS outputs.
  ligra::LigraContext SparseCtx{&TS, 1, /*DirectionDenominator=*/0};
  SparseCtx.DirectionDenominator = 1; // threshold = |E|, nearly always sparse
  ligra::LigraContext DenseCtx{&TS, 1, 20};
  DenseCtx.DirectionDenominator = 1 << 30; // threshold ~0, always dense

  auto DistSparse = ligra::ligraBfs(SparseCtx, G, 0);
  auto DistDense = ligra::ligraBfs(DenseCtx, G, 0);
  EXPECT_EQ(DistSparse, refBfs(G, 0));
  EXPECT_EQ(DistDense, refBfs(G, 0));
}

} // namespace

//===----------------------------------------------------------------------===//
// Mini-GraphIt: schedules and apps (appended suite).
//===----------------------------------------------------------------------===//

#include "baselines/graphit/GraphIt.h"

namespace {

using egacs::graphit::Direction;
using egacs::graphit::Frontier;
using egacs::graphit::GraphItContext;
using egacs::graphit::Schedule;

class GraphItApps : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(GraphItApps, MatchReference) {
  const BaselineCase &C = GetParam();
  Csr G = makeGraph(C.Graph);
  ThreadPoolTaskSystem Pool(C.NumTasks);
  GraphItContext Ctx{&Pool, C.NumTasks};

  EXPECT_EQ(egacs::graphit::graphitBfs(Ctx, G, 0), refBfs(G, 0));
  EXPECT_EQ(egacs::graphit::graphitSssp(Ctx, G, 0), refSssp(G, 0));
  EXPECT_EQ(egacs::graphit::graphitCc(Ctx, G), refConnectedComponents(G));
  EXPECT_EQ(egacs::graphit::graphitTri(Ctx, G.sortedByDestination()),
            refTriangleCount(G));

  std::vector<float> Pr = egacs::graphit::graphitPr(Ctx, G, 0.85f, 1e-4f, 50);
  std::vector<float> Ref = refPageRank(G, 0.85f, 1e-4f, 50);
  ASSERT_EQ(Pr.size(), Ref.size());
  for (std::size_t I = 0; I < Pr.size(); ++I)
    EXPECT_NEAR(Pr[I], Ref[I], 1e-4f + 1e-2f * Ref[I]);
}

INSTANTIATE_TEST_SUITE_P(GraphsAndTasks, GraphItApps,
                         ::testing::Values(BaselineCase{"road", 1},
                                           BaselineCase{"road", 4},
                                           BaselineCase{"rmat", 4},
                                           BaselineCase{"random", 3}),
                         baselineCaseName);

TEST(GraphItSchedules, AllDirectionsAgreeOnBfs) {
  Csr G = makeGraph("rmat");
  SerialTaskSystem TS;
  GraphItContext Ctx{&TS, 1};
  auto Ref = refBfs(G, 0);
  for (Direction Dir :
       {Direction::SparsePush, Direction::DensePull, Direction::Hybrid}) {
    Schedule Sched;
    Sched.Dir = Dir;
    EXPECT_EQ(egacs::graphit::graphitBfs(Ctx, G, 0, Sched), Ref)
        << "direction " << static_cast<int>(Dir);
  }
}

TEST(GraphItSchedules, DedupOffStillCorrectButLargerFrontiers) {
  Csr G = makeGraph("random");
  SerialTaskSystem TS;
  GraphItContext Ctx{&TS, 1};
  Schedule NoDedup;
  NoDedup.Dir = Direction::SparsePush;
  NoDedup.Dedup = false;
  EXPECT_EQ(egacs::graphit::graphitBfs(Ctx, G, 0, NoDedup), refBfs(G, 0));
}

TEST(GraphItFrontier, BitvectorAndSparseAgree) {
  Frontier F(200);
  for (NodeId V : {0, 63, 64, 127, 199})
    F.insertSerial(V);
  EXPECT_EQ(F.size(), 5);
  EXPECT_TRUE(F.test(63));
  EXPECT_TRUE(F.test(64));
  EXPECT_FALSE(F.test(65));
  Frontier R(200);
  for (NodeId V : {0, 63, 64, 127, 199})
    R.mutableBits()[static_cast<std::size_t>(V) >> 6] |=
        1ull << (static_cast<unsigned>(V) & 63);
  R.setCount(5);
  R.rebuildSparseFromBits();
  EXPECT_EQ(R.sparse(), F.sparse());
}

} // namespace
