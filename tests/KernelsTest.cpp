//===- tests/KernelsTest.cpp - Kernel correctness integration tests -------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Every benchmark kernel is run across SIMD targets, optimization bundles,
// task systems, and graph classes, and its output is checked against the
// serial oracles — the paper's "collect the outputs and check them against
// the reference output" methodology as a test suite.
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "kernels/Kernels.h"
#include "simd/Targets.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

using namespace egacs;
using namespace egacs::simd;

namespace {

/// Prepares a named test graph (weights everywhere; sorted adjacency where
/// the kernel needs it).
Csr makeTestGraph(const std::string &Name, bool Sorted) {
  Csr G = [&] {
    if (Name == "path")
      return pathGraph(64, /*Weighted=*/true);
    if (Name == "cycle")
      return cycleGraph(37);
    if (Name == "star")
      return starGraph(33);
    if (Name == "road")
      return roadGraph(24, 17, 0.08, /*Seed=*/5);
    if (Name == "rmat")
      return rmatGraph(/*Scale=*/9, /*EdgeFactor=*/6, /*Seed=*/9);
    if (Name == "random")
      return uniformRandomGraph(1500, /*Degree=*/4, /*Seed=*/11);
    ADD_FAILURE() << "unknown test graph " << Name;
    return pathGraph(2);
  }();
  return Sorted ? G.sortedByDestination() : std::move(G);
}

struct KernelCase {
  KernelKind Kernel;
  TargetKind Target;
  std::string Graph;
};

class KernelCorrectness : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelCorrectness, MatchesReference) {
  const KernelCase &C = GetParam();
  if (!targetSupported(C.Target))
    GTEST_SKIP() << "target not supported on this CPU";
  Csr G = makeTestGraph(C.Graph, kernelNeedsSortedAdjacency(C.Kernel));

  SerialTaskSystem Serial;
  KernelConfig Cfg = KernelConfig::allOptimizations(Serial, 1);
  Cfg.Delta = 512;
  KernelOutput Out = runKernel(C.Kernel, C.Target, G, Cfg, /*Source=*/0);
  EXPECT_TRUE(verifyKernelOutput(C.Kernel, G, 0, Out, Cfg))
      << kernelName(C.Kernel) << " on " << C.Graph << " with "
      << targetName(C.Target);
}

std::vector<KernelCase> allKernelCases() {
  const TargetKind Targets[] = {
      TargetKind::Scalar1, TargetKind::Scalar8,
#ifdef EGACS_HAVE_AVX2
      TargetKind::Avx2x4,  TargetKind::Avx2x8,  TargetKind::Avx2x16,
#endif
#ifdef EGACS_HAVE_AVX512
      TargetKind::Avx512x8, TargetKind::Avx512x16,
#endif
  };
  const char *Graphs[] = {"path", "cycle", "star", "road", "rmat", "random"};
  std::vector<KernelCase> Cases;
  for (KernelKind Kernel : AllKernels)
    for (TargetKind Target : Targets)
      for (const char *Graph : Graphs)
        Cases.push_back({Kernel, Target, Graph});
  return Cases;
}

std::string kernelCaseName(const ::testing::TestParamInfo<KernelCase> &Info) {
  std::string Name = kernelName(Info.param.Kernel);
  Name += "_";
  Name += targetName(Info.param.Target);
  Name += "_";
  Name += Info.param.Graph;
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(AllKernelsTargetsGraphs, KernelCorrectness,
                         ::testing::ValuesIn(allKernelCases()),
                         kernelCaseName);

//===----------------------------------------------------------------------===//
// Optimization-combination sweep (the Fig 5 configurations must all agree).
//===----------------------------------------------------------------------===//

struct OptCase {
  bool Io, Np, Cc, Fibers;
};

class OptCombination : public ::testing::TestWithParam<OptCase> {};

TEST_P(OptCombination, AllKernelsCorrectUnderConfig) {
  const OptCase &C = GetParam();
  ThreadPoolTaskSystem Pool(4);
  KernelConfig Cfg = KernelConfig::unoptimized(Pool, 4);
  Cfg.IterationOutlining = C.Io;
  Cfg.NestedParallelism = C.Np;
  Cfg.CoopConversion = C.Cc;
  Cfg.Fibers = C.Fibers;
  Cfg.Delta = 512;

  TargetKind Target = targetSupported(TargetKind::Avx512x16)
                          ? TargetKind::Avx512x16
                          : TargetKind::Scalar8;
  for (KernelKind Kernel : AllKernels) {
    Csr G = makeTestGraph("rmat", kernelNeedsSortedAdjacency(Kernel));
    KernelOutput Out = runKernel(Kernel, Target, G, Cfg, /*Source=*/0);
    EXPECT_TRUE(verifyKernelOutput(Kernel, G, 0, Out, Cfg))
        << kernelName(Kernel) << " io=" << C.Io << " np=" << C.Np
        << " cc=" << C.Cc << " fib=" << C.Fibers;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fig5Configs, OptCombination,
    ::testing::Values(OptCase{false, false, false, false},
                      OptCase{true, false, false, false},
                      OptCase{true, true, true, false},
                      OptCase{true, false, false, true},
                      OptCase{true, true, true, true},
                      OptCase{false, true, true, true}),
    [](const ::testing::TestParamInfo<OptCase> &Info) {
      std::string Name;
      Name += Info.param.Io ? "io" : "noio";
      Name += Info.param.Np ? "_np" : "_nonp";
      Name += Info.param.Cc ? "_cc" : "_nocc";
      Name += Info.param.Fibers ? "_fib" : "_nofib";
      return Name;
    });

//===----------------------------------------------------------------------===//
// Task systems: every tasking backend must produce identical results.
//===----------------------------------------------------------------------===//

class TaskSystemSweep : public ::testing::TestWithParam<TaskSystemKind> {};

TEST_P(TaskSystemSweep, BfsAndSsspCorrect) {
  auto TS = makeTaskSystem(GetParam(), 4);
  int NumTasks = GetParam() == TaskSystemKind::Serial ? 1 : 4;
  KernelConfig Cfg = KernelConfig::allOptimizations(*TS, NumTasks);
  Cfg.Delta = 512;
  Csr G = makeTestGraph("road", false);
  TargetKind Target = targetSupported(TargetKind::Avx2x8)
                          ? TargetKind::Avx2x8
                          : TargetKind::Scalar8;
  for (KernelKind Kernel : {KernelKind::BfsWl, KernelKind::SsspNf}) {
    KernelOutput Out = runKernel(Kernel, Target, G, Cfg, /*Source=*/3);
    EXPECT_TRUE(verifyKernelOutput(Kernel, G, 3, Out, Cfg))
        << kernelName(Kernel) << " on " << TS->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllTaskSystems, TaskSystemSweep,
                         ::testing::Values(TaskSystemKind::Serial,
                                           TaskSystemKind::Spawn,
                                           TaskSystemKind::Pool,
                                           TaskSystemKind::SpinPool),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case TaskSystemKind::Serial:
                             return "serial";
                           case TaskSystemKind::Spawn:
                             return "spawn";
                           case TaskSystemKind::Pool:
                             return "pool";
                           case TaskSystemKind::SpinPool:
                             return "spin";
                           }
                           return "unknown";
                         });

//===----------------------------------------------------------------------===//
// Determinism and miscellaneous kernel properties.
//===----------------------------------------------------------------------===//

TEST(KernelProperties, BfsVariantsAgree) {
  Csr G = makeTestGraph("rmat", false);
  SerialTaskSystem Serial;
  KernelConfig Cfg = KernelConfig::allOptimizations(Serial, 1);
  TargetKind Target = TargetKind::Scalar8;
  KernelOutput Wl = runKernel(KernelKind::BfsWl, Target, G, Cfg, 0);
  KernelOutput Cx = runKernel(KernelKind::BfsCx, Target, G, Cfg, 0);
  KernelOutput Tp = runKernel(KernelKind::BfsTp, Target, G, Cfg, 0);
  KernelOutput Hb = runKernel(KernelKind::BfsHb, Target, G, Cfg, 0);
  EXPECT_EQ(Wl.IntData, Cx.IntData);
  EXPECT_EQ(Wl.IntData, Tp.IntData);
  EXPECT_EQ(Wl.IntData, Hb.IntData);
}

TEST(KernelProperties, SsspDeltasAgree) {
  Csr G = makeTestGraph("road", false);
  SerialTaskSystem Serial;
  TargetKind Target = TargetKind::Scalar8;
  KernelOutput Baseline;
  bool First = true;
  for (std::int32_t Delta : {64, 512, 4096, 1 << 20}) {
    KernelConfig Cfg = KernelConfig::allOptimizations(Serial, 1);
    Cfg.Delta = Delta;
    KernelOutput Out = runKernel(KernelKind::SsspNf, Target, G, Cfg, 0);
    if (First) {
      Baseline = Out;
      First = false;
      EXPECT_TRUE(verifyKernelOutput(KernelKind::SsspNf, G, 0, Out, Cfg));
    } else {
      EXPECT_EQ(Baseline.IntData, Out.IntData) << "delta=" << Delta;
    }
  }
}

TEST(KernelProperties, CcFindsDisconnectedComponents) {
  // Two disjoint cycles: labels must be the two minimum ids.
  std::vector<RawEdge> Edges;
  for (NodeId N = 0; N < 10; ++N)
    Edges.push_back({N, static_cast<NodeId>((N + 1) % 10), 1});
  for (NodeId N = 10; N < 25; ++N)
    Edges.push_back(
        {N, static_cast<NodeId>(10 + (N - 10 + 1) % 15), 1});
  BuildOptions Opts;
  Opts.Symmetrize = true;
  Csr G = buildCsr(25, std::move(Edges), Opts);

  SerialTaskSystem Serial;
  KernelConfig Cfg = KernelConfig::allOptimizations(Serial, 1);
  KernelOutput Out =
      runKernel(KernelKind::Cc, TargetKind::Scalar8, G, Cfg, 0);
  for (NodeId N = 0; N < 10; ++N)
    EXPECT_EQ(Out.IntData[static_cast<std::size_t>(N)], 0);
  for (NodeId N = 10; N < 25; ++N)
    EXPECT_EQ(Out.IntData[static_cast<std::size_t>(N)], 10);
}

TEST(KernelProperties, TriangleCountsOnClosedForms) {
  SerialTaskSystem Serial;
  KernelConfig Cfg = KernelConfig::allOptimizations(Serial, 1);
  // K_n has n-choose-3 triangles.
  for (NodeId N : {4, 7, 12}) {
    Csr G = completeGraph(N).sortedByDestination();
    KernelOutput Out =
        runKernel(KernelKind::Tri, TargetKind::Scalar8, G, Cfg, 0);
    std::int64_t Expected =
        static_cast<std::int64_t>(N) * (N - 1) * (N - 2) / 6;
    EXPECT_EQ(Out.Scalar0, Expected) << "K_" << N;
  }
  // A star has none.
  Csr Star = starGraph(12).sortedByDestination();
  EXPECT_EQ(runKernel(KernelKind::Tri, TargetKind::Scalar8, Star, Cfg, 0)
                .Scalar0,
            0);
}

TEST(KernelProperties, MstOnPathIsWholePath) {
  Csr G = pathGraph(40, /*Weighted=*/true);
  SerialTaskSystem Serial;
  KernelConfig Cfg = KernelConfig::allOptimizations(Serial, 1);
  KernelOutput Out =
      runKernel(KernelKind::Mst, TargetKind::Scalar8, G, Cfg, 0);
  std::int64_t Expected = 0;
  for (std::int32_t I = 1; I < 40; ++I)
    Expected += I;
  EXPECT_EQ(Out.Scalar0, Expected);
  EXPECT_EQ(Out.Scalar1, 39);
}

TEST(KernelProperties, DisconnectedGraphsHandleUnreachableNodes) {
  // Two components plus isolated nodes; every kernel must stay correct.
  std::vector<RawEdge> Edges;
  for (NodeId N = 0; N + 1 < 40; ++N)
    Edges.push_back({N, static_cast<NodeId>(N + 1),
                     static_cast<Weight>(N % 7 + 1)});
  for (NodeId N = 50; N + 1 < 90; ++N)
    Edges.push_back({N, static_cast<NodeId>(N + 1),
                     static_cast<Weight>(N % 5 + 1)});
  BuildOptions Opts;
  Opts.Symmetrize = true;
  Csr G = buildCsr(100, std::move(Edges), Opts); // nodes 90..99 isolated

  SerialTaskSystem Serial;
  KernelConfig Cfg = KernelConfig::allOptimizations(Serial, 1);
  Cfg.Delta = 16;
  for (KernelKind Kernel : AllKernels) {
    Csr Prepared = kernelNeedsSortedAdjacency(Kernel)
                       ? G.sortedByDestination()
                       : Csr();
    const Csr &Use = kernelNeedsSortedAdjacency(Kernel) ? Prepared : G;
    KernelOutput Out = runKernel(Kernel, TargetKind::Scalar8, Use, Cfg, 0);
    EXPECT_TRUE(verifyKernelOutput(Kernel, Use, 0, Out, Cfg))
        << kernelName(Kernel);
  }
  // Unreachable nodes keep the sentinel distance.
  KernelOutput Bfs = runKernel(KernelKind::BfsWl, TargetKind::Scalar8, G,
                               Cfg, 0);
  EXPECT_EQ(Bfs.IntData[60], InfDist);
  EXPECT_EQ(Bfs.IntData[95], InfDist);
  EXPECT_NE(Bfs.IntData[39], InfDist);
}

TEST(KernelProperties, ManyTaskStress) {
  // 8 tasks on a skewed graph across several seeds: hunts for races in the
  // worklist, barrier, and atomic paths.
  TargetKind Target = targetSupported(TargetKind::Avx512x16)
                          ? TargetKind::Avx512x16
                          : TargetKind::Scalar8;
  for (std::uint64_t Seed : {101ull, 202ull, 303ull}) {
    Csr G = rmatGraph(9, 8, Seed);
    SpinPoolTaskSystem Pool(8);
    KernelConfig Cfg = KernelConfig::allOptimizations(Pool, 8);
    Cfg.Delta = 512;
    for (KernelKind Kernel :
         {KernelKind::BfsWl, KernelKind::BfsCx, KernelKind::Cc,
          KernelKind::SsspNf, KernelKind::Mis, KernelKind::Mst}) {
      KernelOutput Out = runKernel(Kernel, Target, G, Cfg, 0);
      EXPECT_TRUE(verifyKernelOutput(Kernel, G, 0, Out, Cfg))
          << kernelName(Kernel) << " seed " << Seed;
    }
  }
}

TEST(KernelProperties, SingleNodeAndTinyGraphs) {
  SerialTaskSystem Serial;
  KernelConfig Cfg = KernelConfig::allOptimizations(Serial, 1);
  // A single node with no edges.
  Csr One = buildCsr(1, {});
  EXPECT_EQ(runKernel(KernelKind::BfsWl, TargetKind::Scalar8, One, Cfg, 0)
                .IntData[0],
            0);
  EXPECT_EQ(runKernel(KernelKind::Cc, TargetKind::Scalar8, One, Cfg, 0)
                .IntData[0],
            0);
  KernelOutput Mis =
      runKernel(KernelKind::Mis, TargetKind::Scalar8, One, Cfg, 0);
  EXPECT_EQ(Mis.IntData[0], MisIn);
  // A single undirected edge.
  BuildOptions Opts;
  Opts.Symmetrize = true;
  Csr Pair = buildCsr(2, {{0, 1, 7}}, Opts);
  KernelOutput Sssp =
      runKernel(KernelKind::SsspNf, TargetKind::Scalar8, Pair, Cfg, 0);
  EXPECT_EQ(Sssp.IntData[1], 7);
  KernelOutput Mst =
      runKernel(KernelKind::Mst, TargetKind::Scalar8, Pair, Cfg, 0);
  EXPECT_EQ(Mst.Scalar0, 7);
  EXPECT_EQ(Mst.Scalar1, 1);
}

TEST(KernelProperties, PrMassConservation) {
  Csr G = makeTestGraph("random", false);
  SerialTaskSystem Serial;
  KernelConfig Cfg = KernelConfig::allOptimizations(Serial, 1);
  KernelOutput Out =
      runKernel(KernelKind::Pr, TargetKind::Scalar8, G, Cfg, 0);
  double Sum = 0.0;
  for (float R : Out.FloatData)
    Sum += R;
  // Symmetric connected-ish graph without sinks keeps total rank near 1.
  EXPECT_NEAR(Sum, 1.0, 0.05);
}

} // namespace
