//===- tests/EngineGoldenStatsTest.cpp - Op-count golden gate -------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// The operator-engine neutrality gate: every kernel runs a pre-recorded set
// of config specs (verify/ConfigSample one-liners covering the layout,
// prefetch, direction, update, sched, and optimization-bundle axes) on fixed
// generated graphs, and the resulting deterministic operation counters must
// match the checked-in goldens bit for bit. The goldens were recorded from
// the hand-rolled pre-engine kernels, so any loop-shape drift introduced by
// the engine (an extra gather, a lost prefetch, a reordered push) fails here
// even when results stay correct.
//
// Regenerate (only when an op-count change is intended and explained):
//   EGACS_GOLDEN_REGEN=1 ./egacs_tests --gtest_filter='EngineGoldenStats.*'
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "kernels/Kernels.h"
#include "runtime/TaskSystem.h"
#include "simd/Ops.h"
#include "support/Stats.h"
#include "trace/Trace.h"
#include "verify/ConfigSample.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace egacs;
using namespace egacs::simd;

#ifdef EGACS_STATS

namespace {

/// Counters that are deterministic for a serial single-task run. Timing
/// counters and contention outcomes (steals, CAS retries) are excluded, as
/// is PrefetchLinesTouched (its duplicate suppression keys on cache-line
/// *addresses*, so it varies with heap placement run to run); at one task
/// the rest are pure functions of the loop shapes.
constexpr Stat TrackedStats[] = {
    Stat::AtomicPushes,        Stat::ItemsPushed,
    Stat::InnerActiveLanes,    Stat::InnerTotalLanes,
    Stat::SpmdOps,             Stat::GatherOps,
    Stat::ScatterOps,          Stat::TaskLaunches,
    Stat::BarrierWaits,        Stat::ChunksDispatched,
    Stat::SchedEpisodes,       Stat::CasAttempts,
    Stat::CombinedLanesSaved,  Stat::UpdatePairsBinned,
    Stat::NeighborGatherLanes, Stat::NeighborContigLanes,
    Stat::PrefetchesIssued,    Stat::DirectionSwitches,
    Stat::PullEdgesScanned,    Stat::PullEarlyExits,
    Stat::FrontierConversions,
};

struct GoldenCase {
  const char *Graph; ///< "rmat" or "road"
  const char *Spec;  ///< verify::parseConfigSpec one-liner
};

// Every case pins tasks=1,ts=serial: the vector packing, scheduling order,
// and CAS outcomes are then deterministic, so the tracked counters are exact.
// Axes covered: all 10 kernels at defaults, the three layouts, both prefetch
// policies, pull/hybrid directions, all four update policies, the dynamic
// sched policies, the paper's unoptimized bundle, and scalar/4-wide targets.
const GoldenCase Cases[] = {
    // All kernels, default knobs, 8-wide portable target.
    {"rmat", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial"},
    {"rmat", "kernel=bfs-cx,target=avx1-i32x8,tasks=1,ts=serial"},
    {"rmat", "kernel=bfs-tp,target=avx1-i32x8,tasks=1,ts=serial"},
    {"rmat", "kernel=bfs-hb,target=avx1-i32x8,tasks=1,ts=serial"},
    {"rmat", "kernel=cc,target=avx1-i32x8,tasks=1,ts=serial"},
    {"rmat", "kernel=tri,target=avx1-i32x8,tasks=1,ts=serial"},
    {"rmat", "kernel=sssp,target=avx1-i32x8,tasks=1,ts=serial"},
    {"rmat", "kernel=mis,target=avx1-i32x8,tasks=1,ts=serial"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial"},
    {"rmat", "kernel=mst,target=avx1-i32x8,tasks=1,ts=serial"},
    // Width diversity: 1-wide degenerate vectors and a 4-wide target.
    {"rmat", "kernel=bfs-wl,target=scalar-i32x1,tasks=1,ts=serial"},
    {"rmat", "kernel=pr,target=scalar-i32x1,tasks=1,ts=serial"},
    {"rmat", "kernel=cc,target=avx1-i32x4,tasks=1,ts=serial"},
    {"rmat", "kernel=mst,target=avx1-i32x4,tasks=1,ts=serial"},
    // Layout axis: hub-partitioned CSR and SELL-C-sigma storage.
    {"rmat", "kernel=bfs-tp,target=avx1-i32x8,tasks=1,ts=serial,"
             "layout=hubcsr"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,layout=hubcsr"},
    {"rmat", "kernel=mis,target=avx1-i32x8,tasks=1,ts=serial,layout=hubcsr"},
    {"rmat", "kernel=bfs-tp,target=avx1-i32x8,tasks=1,ts=serial,layout=sell,"
             "sigma=64"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,layout=sell,"
             "sigma=4096"},
    {"rmat", "kernel=cc,target=avx1-i32x8,tasks=1,ts=serial,layout=sell,"
             "sigma=64"},
    {"rmat", "kernel=sssp,target=avx1-i32x8,tasks=1,ts=serial,layout=sell,"
             "sigma=64"},
    {"rmat",
     "kernel=mst,target=avx1-i32x8,tasks=1,ts=serial,layout=hubcsr"},
    {"rmat", "kernel=tri,target=avx1-i32x8,tasks=1,ts=serial,layout=sell,"
             "sigma=64"},
    // Prefetch axis: row staging and row+property staging.
    {"rmat", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial,"
             "prefetch=rows,pfdist=4"},
    {"rmat", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial,"
             "prefetch=rows+props,pfdist=2"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,"
             "prefetch=rows+props,pfdist=4"},
    {"rmat", "kernel=cc,target=avx1-i32x8,tasks=1,ts=serial,"
             "prefetch=rows,pfdist=8"},
    {"rmat", "kernel=tri,target=avx1-i32x8,tasks=1,ts=serial,"
             "prefetch=rows,pfdist=4"},
    {"rmat", "kernel=mst,target=avx1-i32x8,tasks=1,ts=serial,"
             "prefetch=rows+props,pfdist=4"},
    {"rmat", "kernel=sssp,target=avx1-i32x8,tasks=1,ts=serial,"
             "prefetch=rows+props,pfdist=2,layout=sell,sigma=64"},
    // Direction axis: forced pull and hybrid switching.
    {"rmat", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial,dir=pull"},
    {"rmat", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial,dir=hybrid,"
             "alpha=4,beta=18"},
    {"rmat", "kernel=bfs-hb,target=avx1-i32x8,tasks=1,ts=serial,dir=pull"},
    {"rmat", "kernel=bfs-hb,target=avx1-i32x8,tasks=1,ts=serial,dir=hybrid"},
    {"rmat", "kernel=cc,target=avx1-i32x8,tasks=1,ts=serial,dir=pull"},
    {"rmat", "kernel=cc,target=avx1-i32x8,tasks=1,ts=serial,dir=hybrid,"
             "alpha=4,beta=2"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,dir=pull"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,dir=hybrid"},
    // Update-engine axis: combining, privatization, blocking.
    {"rmat", "kernel=cc,target=avx1-i32x8,tasks=1,ts=serial,"
             "update=combined"},
    {"rmat", "kernel=sssp,target=avx1-i32x8,tasks=1,ts=serial,"
             "update=combined"},
    {"rmat",
     "kernel=mst,target=avx1-i32x8,tasks=1,ts=serial,update=combined"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,"
             "update=privatized"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,update=blocked,"
             "ublock=64"},
    {"rmat", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial,"
             "update=combined"},
    // Work-distribution axis: chunked cursor and stealing deques.
    {"rmat", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial,"
             "sched=chunked,chunk=64"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,sched=stealing,"
             "chunk=32"},
    {"rmat", "kernel=tri,target=avx1-i32x8,tasks=1,ts=serial,sched=chunked,"
             "chunk=128,guided=1"},
    // The paper's unoptimized bundle (no IO/NP/CC/fibers).
    {"rmat", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial,io=0,np=0,"
             "cc=0,fib=0"},
    {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,io=0,np=0,cc=0,"
             "fib=0"},
    {"rmat", "kernel=mis,target=avx1-i32x8,tasks=1,ts=serial,io=0,np=0,"
             "cc=0,fib=0"},
    // Road-class graph: high diameter, near-uniform degree.
    {"road", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial"},
    {"road", "kernel=sssp,target=avx1-i32x8,tasks=1,ts=serial,delta=512"},
    {"road", "kernel=cc,target=avx1-i32x8,tasks=1,ts=serial,dir=hybrid"},
    {"road", "kernel=bfs-hb,target=avx1-i32x8,tasks=1,ts=serial,"
             "prefetch=rows+props,pfdist=4"},
};

std::string goldenPath() {
  return std::string(EGACS_SRC_DIR) + "/../tests/golden/engine_stats.golden";
}

const Csr &testGraph(const std::string &Name) {
  // Destination-sorted (tri's precondition) weighted graphs; deterministic.
  static const Csr Rmat = withRandomWeights(
      rmatGraph(/*Scale=*/9, /*EdgeFactor=*/8, /*Seed=*/42)
          .sortedByDestination(),
      /*MaxWeight=*/64, /*Seed=*/7);
  static const Csr Road =
      roadGraph(24, 24, /*DiagonalFraction=*/0.05, /*Seed=*/5)
          .sortedByDestination();
  return Name == "road" ? Road : Rmat;
}

/// Runs one case and renders its tracked-counter line. With \p Session the
/// run records into it (tracing must not change a single count).
std::string runCase(const GoldenCase &C,
                    trace::TraceSession *Session = nullptr) {
  verify::SampledRun R = verify::parseConfigSpec(C.Spec);
  SerialTaskSystem Serial;
  R.Cfg.TS = &Serial;
  R.Cfg.Trace = Session;
  const Csr &G = testGraph(C.Graph);

  statsReset();
  setOpCounting(true);
  StatsSnapshot Before = StatsSnapshot::capture();
  runKernel(R.Kernel, R.Target, G, R.Cfg, /*Source=*/0);
  StatsSnapshot Delta = StatsSnapshot::capture() - Before;
  setOpCounting(false);
  statsReset();

  std::ostringstream Os;
  for (Stat S : TrackedStats)
    Os << statName(S) << '=' << Delta.get(S) << ' ';
  std::string Line = Os.str();
  if (!Line.empty())
    Line.pop_back();
  return Line;
}

std::string caseKey(const GoldenCase &C) {
  return std::string(C.Graph) + "|" + C.Spec;
}

TEST(EngineGoldenStats, CountersMatchPreEngineGoldens) {
  const bool Regen = std::getenv("EGACS_GOLDEN_REGEN") != nullptr;

  if (Regen) {
    std::ofstream Out(goldenPath(), std::ios::trunc);
    ASSERT_TRUE(Out.is_open()) << "cannot write " << goldenPath();
    Out << "# Deterministic per-run operation counters, one line per config\n"
           "# spec (tests/EngineGoldenStatsTest.cpp). Recorded from the\n"
           "# pre-engine hand-rolled kernels; the operator engine must\n"
           "# reproduce every count bit for bit.\n";
    for (const GoldenCase &C : Cases)
      Out << caseKey(C) << " -> " << runCase(C) << "\n";
    GTEST_SKIP() << "regenerated " << goldenPath();
  }

  std::ifstream In(goldenPath());
  ASSERT_TRUE(In.is_open())
      << goldenPath()
      << " missing; run with EGACS_GOLDEN_REGEN=1 to record it";
  std::map<std::string, std::string> Golden;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::size_t Sep = Line.find(" -> ");
    ASSERT_NE(Sep, std::string::npos) << "malformed golden line: " << Line;
    Golden[Line.substr(0, Sep)] = Line.substr(Sep + 4);
  }
  EXPECT_EQ(Golden.size(), std::size(Cases))
      << "golden file and case table disagree; regenerate deliberately";

  for (const GoldenCase &C : Cases) {
    auto It = Golden.find(caseKey(C));
    if (It == Golden.end()) {
      ADD_FAILURE() << "no golden entry for " << caseKey(C)
                    << "; regenerate deliberately";
      continue;
    }
    EXPECT_EQ(runCase(C), It->second) << caseKey(C);
  }
}

#ifdef EGACS_TRACE

// Tracing neutrality: attaching a TraceSession must not change a single
// tracked operation count — the spans observe the loops, never alter them.
// Cases span the frontier engine (hybrid switching), the update engine's
// merge phase, the staged prefetch loops, and the flat edge sweep.
TEST(EngineGoldenStats, TracedRunCountersBitIdentical) {
  const GoldenCase Picks[] = {
      {"rmat", "kernel=bfs-hb,target=avx1-i32x8,tasks=1,ts=serial,"
               "dir=hybrid"},
      {"rmat", "kernel=pr,target=avx1-i32x8,tasks=1,ts=serial,"
               "update=privatized"},
      {"rmat", "kernel=tri,target=avx1-i32x8,tasks=1,ts=serial,"
               "prefetch=rows,pfdist=4"},
      {"road", "kernel=bfs-wl,target=avx1-i32x8,tasks=1,ts=serial"},
  };
  for (const GoldenCase &C : Picks) {
    std::string Plain = runCase(C);
    trace::TraceSession Session;
    EXPECT_EQ(runCase(C, &Session), Plain) << caseKey(C);
    EXPECT_FALSE(Session.rounds().empty()) << caseKey(C);
  }
}

#endif // EGACS_TRACE

} // namespace

#endif // EGACS_STATS
