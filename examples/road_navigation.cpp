//===- examples/road_navigation.cpp - Route distances on a road network ---===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// A navigation-style workload on a road network — the paper's USA-Road
// scenario: single-source shortest paths with the near-far worklist kernel,
// a DELTA sensitivity sweep (the paper tunes DELTA per input), and distance
// queries to a set of destinations. Loads a DIMACS .gr file when given
// --graph=<path>, else generates a synthetic road network.
//
//   $ ./road_navigation [--scale=N] [--graph=usa.gr]
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "graph/Loader.h"
#include "kernels/Kernels.h"
#include "simd/Targets.h"
#include "support/Options.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>

using namespace egacs;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  int Scale = static_cast<int>(Opts.getInt("scale", 3));
  std::string Path = Opts.getString("graph", "");

  Csr G = [&] {
    if (!Path.empty()) {
      if (auto Loaded = loadDimacs(Path, /*Symmetrize=*/true))
        return std::move(*Loaded);
      std::fprintf(stderr, "warning: could not load %s; using synthetic "
                           "road network\n",
                   Path.c_str());
    }
    return namedGraph("road", Scale);
  }();
  std::printf("road network: %d intersections, %d road segments\n",
              G.numNodes(), G.numEdges() / 2);

  ThreadPoolTaskSystem Pool(4);
  TargetKind Target = targetSupported(TargetKind::Avx512x16)
                          ? TargetKind::Avx512x16
                      : targetSupported(TargetKind::Avx2x8)
                          ? TargetKind::Avx2x8
                          : TargetKind::Scalar8;
  NodeId Depot = 0;

  // DELTA sensitivity: the near-far threshold trades redundant relaxations
  // (small DELTA -> many bucket advances) against wasted work (large DELTA
  // -> premature far relaxations). The paper uses one tuned DELTA per
  // input.
  Table Sweep({"DELTA", "time ms"});
  std::int32_t BestDelta = 0;
  double BestMs = 1e30;
  std::vector<std::int32_t> Dist;
  for (std::int32_t Delta : {512, 2048, 8192, 32768, 131072}) {
    KernelConfig Cfg = KernelConfig::allOptimizations(Pool, 4);
    Cfg.Delta = Delta;
    double Ms = 0.0;
    for (int R = 0; R < 3; ++R)
      Ms += timeMs([&] {
        KernelOutput Out =
            runKernel(KernelKind::SsspNf, Target, G, Cfg, Depot);
        Dist = std::move(Out.IntData);
      });
    Ms /= 3;
    Sweep.addRow({Table::fmt(static_cast<std::uint64_t>(Delta)),
                  Table::fmt(Ms)});
    if (Ms < BestMs) {
      BestMs = Ms;
      BestDelta = Delta;
    }
  }
  Sweep.print();
  std::printf("best DELTA for this network: %d (%.2f ms)\n\n", BestDelta,
              BestMs);

  // Distance queries: the far corners of the network.
  Table Routes({"destination", "distance", "reachable"});
  NodeId N = G.numNodes();
  for (NodeId Dest : {N / 4, N / 2, 3 * N / 4, N - 1}) {
    std::int32_t D = Dist[static_cast<std::size_t>(Dest)];
    Routes.addRow({"node " + std::to_string(Dest),
                   D == InfDist ? "-" : std::to_string(D),
                   D == InfDist ? "no" : "yes"});
  }
  Routes.print();
  return 0;
}
