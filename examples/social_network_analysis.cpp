//===- examples/social_network_analysis.cpp - Scale-free graph analytics --===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// An analytics pipeline on a scale-free graph — the paper's RMAT scenario:
// PageRank influencers, triangle-based clustering, community structure via
// connected components, and an MIS as a non-adjacent seed set, all on the
// SIMD kernels.
//
//   $ ./social_network_analysis [--scale=N]
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "kernels/Kernels.h"
#include "simd/Targets.h"
#include "support/Options.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace egacs;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  int Scale = static_cast<int>(Opts.getInt("scale", 3));

  Csr G = namedGraph("rmat", Scale);
  Csr GSorted = G.sortedByDestination();
  std::printf("social graph: %d users, %d follow relations\n", G.numNodes(),
              G.numEdges() / 2);

  ThreadPoolTaskSystem Pool(4);
  KernelConfig Cfg = KernelConfig::allOptimizations(Pool, 4);
  TargetKind Target = targetSupported(TargetKind::Avx512x16)
                          ? TargetKind::Avx512x16
                      : targetSupported(TargetKind::Avx2x8)
                          ? TargetKind::Avx2x8
                          : TargetKind::Scalar8;

  // Influencers: top PageRank users.
  KernelOutput Pr = runKernel(KernelKind::Pr, Target, G, Cfg);
  std::vector<NodeId> ByRank(static_cast<std::size_t>(G.numNodes()));
  for (NodeId N = 0; N < G.numNodes(); ++N)
    ByRank[static_cast<std::size_t>(N)] = N;
  std::partial_sort(ByRank.begin(), ByRank.begin() + 5, ByRank.end(),
                    [&](NodeId A, NodeId B) {
                      return Pr.FloatData[static_cast<std::size_t>(A)] >
                             Pr.FloatData[static_cast<std::size_t>(B)];
                    });
  Table Influencers({"rank", "user", "pagerank", "followers"});
  for (int I = 0; I < 5; ++I) {
    NodeId U = ByRank[static_cast<std::size_t>(I)];
    Influencers.addRow(
        {Table::fmt(static_cast<std::uint64_t>(I + 1)),
         "user " + std::to_string(U),
         Table::fmt(Pr.FloatData[static_cast<std::size_t>(U)] * 1e6, 2) +
             "e-6",
         Table::fmt(static_cast<std::uint64_t>(G.degree(U)))});
  }
  Influencers.print();

  // Clustering: global triangle count and clustering coefficient.
  KernelOutput Tri = runKernel(KernelKind::Tri, Target, GSorted, Cfg);
  std::int64_t Wedges = 0;
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    std::int64_t D = G.degree(N);
    Wedges += D * (D - 1) / 2;
  }
  std::printf("\ntriangles: %lld; global clustering coefficient: %.5f\n",
              static_cast<long long>(Tri.Scalar0),
              Wedges ? 3.0 * static_cast<double>(Tri.Scalar0) /
                           static_cast<double>(Wedges)
                     : 0.0);

  // Community structure: connected components.
  KernelOutput Comp = runKernel(KernelKind::Cc, Target, G, Cfg);
  std::map<std::int32_t, std::int64_t> Sizes;
  for (std::int32_t Label : Comp.IntData)
    ++Sizes[Label];
  std::int64_t Largest = 0;
  for (const auto &[Label, Size] : Sizes)
    Largest = std::max(Largest, Size);
  std::printf("communities (components): %zu; largest covers %.1f%% of "
              "users\n",
              Sizes.size(),
              100.0 * static_cast<double>(Largest) / G.numNodes());

  // Seed selection: a maximal independent set gives pairwise non-adjacent
  // campaign seeds.
  KernelOutput Mis = runKernel(KernelKind::Mis, Target, G, Cfg);
  std::int64_t Seeds = 0;
  for (std::int32_t S : Mis.IntData)
    Seeds += S == MisIn;
  std::printf("non-adjacent seed set: %lld users (%.1f%%)\n",
              static_cast<long long>(Seeds),
              100.0 * static_cast<double>(Seeds) / G.numNodes());
  return 0;
}
