//===- examples/custom_kernel.cpp - Writing your own SPMD kernel ----------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// How a downstream user adds an algorithm on the public SPMD API: a k-core
// decomposition (repeatedly peel nodes of degree < k) written directly
// against the varying-value operators, worklists with Cooperative
// Conversion, and the Pipe driver with Iteration Outlining. Verified
// against a simple serial implementation.
//
//   $ ./custom_kernel [--scale=N] [--k=K]
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "engine/Engine.h"
#include "simd/Targets.h"
#include "support/Options.h"

#include <cstdio>
#include <numeric>
#include <vector>

using namespace egacs;
using namespace egacs::simd;

namespace {

/// SPMD k-core: peel nodes whose remaining degree is below K until a fixed
/// point; nodes surviving with RemDeg >= K form the k-core.
///
/// The kernel demonstrates the core idioms:
///  * vertex vectors with tail masks (forEachWorklistSlice);
///  * per-lane edge iteration (plainForEachEdge) with gathers;
///  * vector atomics (atomicAddVector) and aggregated pushes (pushCoop);
///  * the outlined Pipe loop (runPipe).
template <typename BK>
std::vector<std::int32_t> kCore(const Csr &G, const KernelConfig &Cfg,
                                std::int32_t K) {
  NodeId N = G.numNodes();
  std::vector<std::int32_t> RemDeg(static_cast<std::size_t>(N));
  for (NodeId I = 0; I < N; ++I)
    RemDeg[static_cast<std::size_t>(I)] = G.degree(I);
  // 0 = alive, 1 = peeled.
  std::vector<std::int32_t> Peeled(static_cast<std::size_t>(N), 0);

  WorklistPair WL(static_cast<std::size_t>(N) + 64);
  for (NodeId I = 0; I < N; ++I)
    if (RemDeg[static_cast<std::size_t>(I)] < K)
      WL.in().pushSerial(I);
  auto Locals = makeTaskLocals(Cfg);
  // Shared work distributor: honours Cfg.Sched (static blocks by default,
  // chunked or stealing for skew-tolerant balance).
  auto Sched = makeLoopScheduler(Cfg, N + 64);

  runPipe(
      Cfg,
      TaskFn([&](int TaskIdx, int TaskCount) {
        TaskLocal &TL = *Locals[TaskIdx];
        auto OnEdge = [&](VInt<BK>, VInt<BK> Dst, VInt<BK>,
                          VMask<BK> EAct) {
          // Decrement the neighbour's remaining degree; neighbours that
          // drop below K for the first time are peeled next round.
          VInt<BK> Old =
              atomicAddVector<BK>(RemDeg.data(), Dst, splat<BK>(-1), EAct);
          VMask<BK> NowBelow = EAct & (Old == splat<BK>(K));
          if (any(NowBelow))
            pushFrontier<BK>(Cfg, WL.out(), nullptr, Dst, NowBelow);
        };
        forEachWorklistSlice<BK>(
            Cfg, *Sched, WL.in().items(), WL.in().size(), TaskIdx, TaskCount,
            [&](VInt<BK> Node, VMask<BK> Act) {
              // Peel each node once (it enters the list exactly once).
              scatter<BK>(Peeled.data(), Node, splat<BK>(1), Act);
              visitEdges<BK>(Cfg, G, Node, Act, TL.Np, OnEdge);
            });
        flushEdges<BK>(Cfg, G, TL.Np, OnEdge);
      }),
      [&] {
        WL.swap();
        return !WL.in().empty();
      });
  return Peeled;
}

/// Serial oracle for verification.
std::vector<std::int32_t> kCoreRef(const Csr &G, std::int32_t K) {
  NodeId N = G.numNodes();
  std::vector<std::int32_t> Deg(static_cast<std::size_t>(N));
  for (NodeId I = 0; I < N; ++I)
    Deg[static_cast<std::size_t>(I)] = G.degree(I);
  std::vector<std::int32_t> Peeled(static_cast<std::size_t>(N), 0);
  std::vector<NodeId> Stack;
  for (NodeId I = 0; I < N; ++I)
    if (Deg[static_cast<std::size_t>(I)] < K)
      Stack.push_back(I);
  while (!Stack.empty()) {
    NodeId U = Stack.back();
    Stack.pop_back();
    if (Peeled[static_cast<std::size_t>(U)])
      continue;
    Peeled[static_cast<std::size_t>(U)] = 1;
    for (NodeId V : G.neighbors(U))
      if (!Peeled[static_cast<std::size_t>(V)] &&
          --Deg[static_cast<std::size_t>(V)] == K - 1)
        Stack.push_back(V);
  }
  return Peeled;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  int Scale = static_cast<int>(Opts.getInt("scale", 3));
  std::int32_t K = static_cast<std::int32_t>(Opts.getInt("k", 5));

  Csr G = namedGraph("rmat", Scale);
  std::printf("graph: %d nodes, %d arcs; computing the %d-core\n",
              G.numNodes(), G.numEdges(), K);

  ThreadPoolTaskSystem Pool(4);
  KernelConfig Cfg = KernelConfig::allOptimizations(Pool, 4);
  TargetKind Target = targetSupported(TargetKind::Avx512x16)
                          ? TargetKind::Avx512x16
                      : targetSupported(TargetKind::Avx2x8)
                          ? TargetKind::Avx2x8
                          : TargetKind::Scalar8;

  std::vector<std::int32_t> Peeled = dispatchTarget(
      Target, [&]<typename BK>() { return kCore<BK>(G, Cfg, K); });
  std::vector<std::int32_t> Ref = kCoreRef(G, K);

  std::int64_t CoreSize = 0;
  for (std::int32_t P : Peeled)
    CoreSize += P == 0;
  bool Ok = Peeled == Ref;
  std::printf("%d-core size: %lld nodes (%.1f%%); verification: %s\n", K,
              static_cast<long long>(CoreSize),
              100.0 * static_cast<double>(CoreSize) / G.numNodes(),
              Ok ? "PASS" : "FAIL");
  return Ok ? 0 : 1;
}
