//===- examples/irgl_codegen.cpp - Driving the mini IrGL compiler ---------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Shows the compiler pipeline end to end: build an IrGL program (BFS, CC,
// or SSSP), apply the selected throughput optimizations (the paper's IO /
// NP / CC / Fibers passes), and print both the optimized IrGL and the
// generated SPMD C++ — the output the paper's ISPC backend would produce.
//
//   $ ./irgl_codegen [--program=bfs|bfstp|cc|sssp] [--io=0] [--np=0] [--cc=0]
//                    [--fibers=0] [--emit=irgl|cpp|both]
//                    [--layout=csr|hubcsr|sell]
//                    [--direction=push|pull|hybrid] [--alpha=15] [--beta=18]
//
//===----------------------------------------------------------------------===//

#include "irgl/CodeGen.h"
#include "irgl/Passes.h"
#include "irgl/Samples.h"
#include "support/Options.h"

#include <cstdio>

using namespace egacs;
using namespace egacs::irgl;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  std::string Name = Opts.getString("program", "bfs");
  std::string Emit = Opts.getString("emit", "both");

  Program P = Name == "cc"      ? buildCcProgram()
              : Name == "sssp"  ? buildSsspProgram()
              : Name == "bfstp" ? buildBfsTpProgram()
                                : buildBfsProgram();

  OptimizationBundle Bundle;
  Bundle.IterationOutlining = Opts.getBool("io", true);
  Bundle.NestedParallelism = Opts.getBool("np", true);
  Bundle.CoopConversion = Opts.getBool("cc", true);
  Bundle.Fibers = Opts.getBool("fibers", true);
  runPasses(P, Bundle);

  if (Emit == "irgl" || Emit == "both") {
    std::printf("// ---- optimized IrGL ----\n%s\n",
                dumpProgram(P).c_str());
  }
  if (Emit == "cpp" || Emit == "both") {
    CodeGenOptions CG;
    CG.Layout = parseLayoutKind(Opts.getString("layout", "csr"));
    CG.Dir = parseDirection(Opts.getString("direction", "push"));
    CG.AlphaNum = static_cast<int>(Opts.getInt("alpha", CG.AlphaNum));
    CG.BetaDenom = static_cast<int>(Opts.getInt("beta", CG.BetaDenom));
    std::printf("// ---- generated SPMD C++ ----\n%s",
                emitCpp(P, CG).c_str());
  }
  return 0;
}
