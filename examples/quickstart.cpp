//===- examples/quickstart.cpp - First steps with EGACS -------------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// The five-minute tour: generate a graph, run a SIMD BFS with all paper
// optimizations, verify it against the serial oracle, and compare the
// serial and SIMD execution times.
//
//   $ ./quickstart [--scale=N]
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "kernels/Kernels.h"
#include "kernels/Reference.h"
#include "simd/Targets.h"
#include "support/Options.h"
#include "support/Timer.h"

#include <cstdio>

using namespace egacs;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  int Scale = static_cast<int>(Opts.getInt("scale", 3));

  // 1. Make an input graph. Generators cover the paper's three classes
  //    (road / rmat / random); loaders exist for DIMACS and edge lists.
  Csr G = namedGraph("rmat", Scale);
  std::printf("graph: %d nodes, %d arcs\n", G.numNodes(), G.numEdges());

  // 2. Pick an execution configuration: a task system, a task count, and
  //    the optimization flags (Iteration Outlining, Nested Parallelism,
  //    Cooperative Conversion, Fibers are all on by default).
  ThreadPoolTaskSystem Pool(4);
  KernelConfig Cfg = KernelConfig::allOptimizations(Pool, 4);

  // 3. Pick a SIMD target. bestTarget-style selection:
  TargetKind Target = targetSupported(TargetKind::Avx512x16)
                          ? TargetKind::Avx512x16
                      : targetSupported(TargetKind::Avx2x8)
                          ? TargetKind::Avx2x8
                          : TargetKind::Scalar8;
  std::printf("SIMD target: %s\n", targetName(Target));

  // 4. Run and verify.
  KernelOutput Out = runKernel(KernelKind::BfsWl, Target, G, Cfg, 0);
  bool Ok = verifyKernelOutput(KernelKind::BfsWl, G, 0, Out, Cfg);
  std::printf("bfs verification: %s\n", Ok ? "PASS" : "FAIL");

  std::int64_t Reached = 0;
  std::int32_t MaxLevel = 0;
  for (std::int32_t D : Out.IntData)
    if (D != InfDist) {
      ++Reached;
      MaxLevel = D > MaxLevel ? D : MaxLevel;
    }
  std::printf("reached %lld of %d nodes; eccentricity %d\n",
              static_cast<long long>(Reached), G.numNodes(), MaxLevel);

  // 5. Compare against the serial configuration the paper uses
  //    (width 1, one task; Section IV-A).
  SerialTaskSystem Serial;
  KernelConfig SerialCfg = KernelConfig::allOptimizations(Serial, 1);
  double SerialMs = timeAvgMs(3, [&] {
    runKernel(KernelKind::BfsWl, TargetKind::Scalar1, G, SerialCfg, 0);
  });
  double SimdMs = timeAvgMs(3, [&] {
    runKernel(KernelKind::BfsWl, Target, G, Cfg, 0);
  });
  std::printf("bfs-wl: serial %.2f ms -> SIMD %.2f ms (%.2fx)\n", SerialMs,
              SimdMs, SerialMs / SimdMs);

  // Worklist BFS is atomic-bound; compute-bound kernels show SIMD off much
  // better (Fig 6) — e.g. the topology-driven BFS variant:
  double SerialTpMs = timeAvgMs(3, [&] {
    runKernel(KernelKind::BfsTp, TargetKind::Scalar1, G, SerialCfg, 0);
  });
  double SimdTpMs = timeAvgMs(3, [&] {
    runKernel(KernelKind::BfsTp, Target, G, Cfg, 0);
  });
  std::printf("bfs-tp: serial %.2f ms -> SIMD %.2f ms (%.2fx)\n", SerialTpMs,
              SimdTpMs, SerialTpMs / SimdTpMs);
  return Ok ? 0 : 1;
}
