//===- bench/bench_kernels.cpp - google-benchmark throughput suite --------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// A google-benchmark registered suite over the SPMD primitives and the
// graph kernels, for fine-grained regression tracking of the pieces the
// paper's figures aggregate: gathers, packed stores, cooperative pushes,
// and whole-kernel throughput on each SIMD target.
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "kernels/Kernels.h"
#include "simd/Targets.h"
#include "support/CpuInfo.h"
#include "support/Rng.h"
#include "worklist/Worklist.h"

#include <benchmark/benchmark.h>

#include <functional>
#include <string>

using namespace egacs;
using namespace egacs::simd;

namespace {

constexpr int TableWords = 1 << 16;

std::vector<std::int32_t> &indexTable() {
  static std::vector<std::int32_t> Table = [] {
    std::vector<std::int32_t> T(TableWords);
    Xoshiro256 Rng(5);
    for (auto &V : T)
      V = static_cast<std::int32_t>(Rng.nextBounded(TableWords));
    return T;
  }();
  return Table;
}

/// True when the executing CPU can run backend BK.
template <typename BK> bool backendSupported() {
  std::string Name = BK::Name;
  if (Name.rfind("avx512", 0) == 0)
    return cpuInfo().HasAvx512f;
  if (Name.rfind("avx2", 0) == 0)
    return cpuInfo().HasAvx2;
  return true;
}

template <typename BK> void BM_Gather(benchmark::State &State) {
  if (!backendSupported<BK>()) {
    State.SkipWithError("target unsupported");
    return;
  }
  auto &Table = indexTable();
  VInt<BK> Idx = simd::load<BK>(Table.data());
  VMask<BK> All = maskAll<BK>();
  for (auto _ : State) {
    Idx = gather<BK>(Table.data(), Idx, All);
    benchmark::DoNotOptimize(Idx);
  }
  State.SetItemsProcessed(State.iterations() * BK::Width);
}

template <typename BK> void BM_PackedStoreActive(benchmark::State &State) {
  alignas(64) std::int32_t Dst[64];
  VInt<BK> V = programIndex<BK>();
  std::uint64_t Bits = 0x5a5a5a5a5a5a5a5aull;
  VMask<BK> M = maskFromBits<BK>(Bits);
  for (auto _ : State) {
    int N = packedStoreActive<BK>(Dst, V, M);
    benchmark::DoNotOptimize(N);
    benchmark::DoNotOptimize(Dst[0]);
  }
  State.SetItemsProcessed(State.iterations() * BK::Width);
}

template <typename BK> void BM_CoopPush(benchmark::State &State) {
  Worklist WL(1 << 20);
  VInt<BK> V = programIndex<BK>();
  VMask<BK> M = maskAll<BK>();
  for (auto _ : State) {
    if (WL.size() + 2 * BK::Width >= static_cast<std::int32_t>(WL.capacity()))
      WL.clear();
    pushCoop<BK>(WL, V, M);
  }
  State.SetItemsProcessed(State.iterations() * BK::Width);
}

template <typename BK> void BM_NaivePush(benchmark::State &State) {
  Worklist WL(1 << 20);
  VInt<BK> V = programIndex<BK>();
  VMask<BK> M = maskAll<BK>();
  for (auto _ : State) {
    if (WL.size() + 2 * BK::Width >= static_cast<std::int32_t>(WL.capacity()))
      WL.clear();
    pushNaive<BK>(WL, V, M);
  }
  State.SetItemsProcessed(State.iterations() * BK::Width);
}

const Csr &benchGraph() {
  static Csr G = rmatGraph(12, 8, 77);
  return G;
}

void BM_Kernel(benchmark::State &State, KernelKind Kind, TargetKind Target) {
  if (!targetSupported(Target)) {
    State.SkipWithError("target unsupported");
    return;
  }
  const Csr &G = kernelNeedsSortedAdjacency(Kind)
                     ? [] {
                         static Csr Sorted =
                             benchGraph().sortedByDestination();
                         return std::cref(Sorted);
                       }()
                             .get()
                     : benchGraph();
  SerialTaskSystem TS;
  KernelConfig Cfg = KernelConfig::allOptimizations(TS, 1);
  Cfg.Delta = 2048;
  for (auto _ : State) {
    KernelOutput Out = runKernel(Kind, Target, G, Cfg, 0);
    benchmark::DoNotOptimize(Out);
  }
  State.SetItemsProcessed(State.iterations() * G.numEdges());
}

#define EGACS_REGISTER_PRIMITIVES(BK, NAME)                                    \
  BENCHMARK(BM_Gather<BK>)->Name("gather/" NAME);                              \
  BENCHMARK(BM_PackedStoreActive<BK>)->Name("packed_store/" NAME);             \
  BENCHMARK(BM_CoopPush<BK>)->Name("push_coop/" NAME);                         \
  BENCHMARK(BM_NaivePush<BK>)->Name("push_naive/" NAME)

EGACS_REGISTER_PRIMITIVES(ScalarBackend<8>, "avx1-i32x8");
#ifdef EGACS_HAVE_AVX2
EGACS_REGISTER_PRIMITIVES(Avx2Backend, "avx2-i32x8");
EGACS_REGISTER_PRIMITIVES(Avx2PumpedBackend, "avx2-i32x16");
#endif
#ifdef EGACS_HAVE_AVX512
EGACS_REGISTER_PRIMITIVES(Avx512Backend, "avx512-i32x16");
#endif

void registerKernelBenchmarks() {
  const TargetKind Targets[] = {
      TargetKind::Scalar1,
#ifdef EGACS_HAVE_AVX2
      TargetKind::Avx2x8,
#endif
#ifdef EGACS_HAVE_AVX512
      TargetKind::Avx512x16,
#endif
  };
  for (KernelKind Kind : AllKernels)
    for (TargetKind Target : Targets) {
      std::string Name = std::string("kernel/") + kernelName(Kind) + "/" +
                         targetName(Target);
      benchmark::RegisterBenchmark(
          Name.c_str(),
          [Kind, Target](benchmark::State &State) {
            BM_Kernel(State, Kind, Target);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
}

} // namespace

int main(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  registerKernelBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
