//===- bench/bench_fig4_frameworks.cpp - Fig 4: framework comparison ------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Fig 4: speedup over the serial version for EGACS (all
// optimizations), the mini-Ligra baseline (direction-optimizing, the five
// common benchmarks), and the scalar-parallel baseline (GraphIt/Galois
// stand-in), across the ten kernels and three graphs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/graphit/GraphIt.h"
#include "baselines/ligra/Apps.h"
#include "baselines/scalar/ScalarKernels.h"
#include "kernels/Reference.h"

#include <cmath>

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

namespace {

double timeLigra(KernelKind Kind, const ligra::LigraContext &Ctx,
                 const Input &In, int Reps) {
  auto Run = [&] {
    switch (Kind) {
    case KernelKind::BfsWl:
      ligra::ligraBfs(Ctx, In.G, In.Source);
      return true;
    case KernelKind::SsspNf:
      ligra::ligraSssp(Ctx, In.G, In.Source);
      return true;
    case KernelKind::Cc:
      ligra::ligraCc(Ctx, In.G);
      return true;
    case KernelKind::Pr:
      ligra::ligraPr(Ctx, In.G, 0.85f, 1e-4f, 50);
      return true;
    case KernelKind::Mis:
      ligra::ligraMis(Ctx, In.G);
      return true;
    default:
      return false;
    }
  };
  if (!Run())
    return -1.0;
  double Total = 0.0;
  for (int R = 0; R < Reps; ++R)
    Total += timeMs([&] { Run(); });
  return Total / Reps;
}

double timeScalar(KernelKind Kind, const scalar::ScalarContext &Ctx,
                  const Input &In, int Reps, std::int32_t Delta) {
  auto Run = [&] {
    std::int64_t W, E;
    switch (Kind) {
    case KernelKind::BfsWl:
      scalar::scalarBfs(Ctx, In.G, In.Source);
      return true;
    case KernelKind::SsspNf:
      scalar::scalarSssp(Ctx, In.G, In.Source, Delta);
      return true;
    case KernelKind::Cc:
      scalar::scalarCc(Ctx, In.G);
      return true;
    case KernelKind::Tri:
      scalar::scalarTri(Ctx, In.GSorted);
      return true;
    case KernelKind::Mis:
      scalar::scalarMis(Ctx, In.G);
      return true;
    case KernelKind::Pr:
      scalar::scalarPr(Ctx, In.G, 0.85f, 1e-4f, 50);
      return true;
    case KernelKind::Mst:
      scalar::scalarMst(Ctx, In.G, W, E);
      return true;
    default:
      return false;
    }
  };
  if (!Run())
    return -1.0;
  double Total = 0.0;
  for (int R = 0; R < Reps; ++R)
    Total += timeMs([&] { Run(); });
  return Total / Reps;
}

double timeGraphIt(KernelKind Kind, const graphit::GraphItContext &Ctx,
                   const Input &In, int Reps) {
  auto Run = [&] {
    switch (Kind) {
    case KernelKind::BfsWl:
      graphit::graphitBfs(Ctx, In.G, In.Source);
      return true;
    case KernelKind::SsspNf:
      graphit::graphitSssp(Ctx, In.G, In.Source);
      return true;
    case KernelKind::Cc:
      graphit::graphitCc(Ctx, In.G);
      return true;
    case KernelKind::Pr:
      graphit::graphitPr(Ctx, In.G, 0.85f, 1e-4f, 50);
      return true;
    case KernelKind::Tri:
      graphit::graphitTri(Ctx, In.GSorted);
      return true;
    default:
      return false;
    }
  };
  if (!Run())
    return -1.0;
  double Total = 0.0;
  for (int R = 0; R < Reps; ++R)
    Total += timeMs([&] { Run(); });
  return Total / Reps;
}

std::string speedupCell(double SerialMs, double Ms) {
  if (Ms < 0.0)
    return "n/a";
  return Table::fmtSpeedup(SerialMs / Ms);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Fig 4 / Table X - EGACS vs Ligra vs scalar frameworks", Env);
  auto TS = Env.makeTs();
  KernelConfig Egacs = KernelConfig::allOptimizations(*TS, Env.NumTasks);
  ligra::LigraContext LigraCtx{TS.get(), Env.NumTasks, 20};
  graphit::GraphItContext GraphItCtx{TS.get(), Env.NumTasks};
  scalar::ScalarContext ScalarCtx{TS.get(), Env.NumTasks};
  TargetKind Target = bestTarget();

  Table Speedups({"kernel", "graph", "serial ms", "EGACS", "mini-Ligra",
                  "mini-GraphIt", "scalar-par"});
  Table TableX({"kernel", "graph", "serial ms", "EGACS ms", "Ligra ms",
                "GraphIt ms", "scalar ms"});
  double GeoEgacs = 0.0, GeoLigra = 0.0, GeoGraphIt = 0.0, GeoScalar = 0.0;
  int NEgacs = 0, NLigra = 0, NGraphIt = 0, NScalar = 0;

  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind : AllKernels) {
      // Fig 4 uses bfs-wl for the cross-framework BFS comparison; the
      // other bfs variants appear in the EGACS-only figures.
      if (Kind == KernelKind::BfsCx || Kind == KernelKind::BfsTp ||
          Kind == KernelKind::BfsHb)
        continue;
      double SerialMs = timeSerial(Kind, In, Env.Reps, Env.Verify);
      double EgacsMs =
          timeKernel(Kind, Target, In, Egacs, Env.Reps, Env.Verify);
      double LigraMs = timeLigra(Kind, LigraCtx, In, Env.Reps);
      double GraphItMs = timeGraphIt(Kind, GraphItCtx, In, Env.Reps);
      double ScalarMs =
          timeScalar(Kind, ScalarCtx, In, Env.Reps, Egacs.Delta);

      Speedups.addRow({kernelName(Kind), In.Name, Table::fmt(SerialMs),
                       speedupCell(SerialMs, EgacsMs),
                       speedupCell(SerialMs, LigraMs),
                       speedupCell(SerialMs, GraphItMs),
                       speedupCell(SerialMs, ScalarMs)});
      auto MsCell = [](double Ms) {
        return Ms < 0.0 ? std::string("n/a") : Table::fmt(Ms);
      };
      TableX.addRow({kernelName(Kind), In.Name, Table::fmt(SerialMs),
                     MsCell(EgacsMs), MsCell(LigraMs), MsCell(GraphItMs),
                     MsCell(ScalarMs)});

      GeoEgacs += std::log(SerialMs / EgacsMs);
      ++NEgacs;
      if (LigraMs > 0.0) {
        GeoLigra += std::log(SerialMs / LigraMs);
        ++NLigra;
      }
      if (GraphItMs > 0.0) {
        GeoGraphIt += std::log(SerialMs / GraphItMs);
        ++NGraphIt;
      }
      if (ScalarMs > 0.0) {
        GeoScalar += std::log(SerialMs / ScalarMs);
        ++NScalar;
      }
    }
  }
  std::printf("--- Fig 4: speedup over serial ---\n");
  Speedups.print();
  std::printf("\ngeomean speedup over serial: EGACS %.2fx, mini-Ligra "
              "%.2fx, mini-GraphIt %.2fx, scalar-parallel %.2fx\n",
              std::exp(GeoEgacs / NEgacs),
              NLigra ? std::exp(GeoLigra / NLigra) : 0.0,
              NGraphIt ? std::exp(GeoGraphIt / NGraphIt) : 0.0,
              NScalar ? std::exp(GeoScalar / NScalar) : 0.0);
  std::printf("\n--- Table X: absolute execution times (ms) ---\n");
  TableX.print();
  std::printf("\npaper shape: EGACS leads most kernel/graph pairs; Ligra's "
              "direction optimization wins BFS on the low-diameter "
              "rmat/random inputs; PR/MST suffer from cmpxchg.\n");
  return 0;
}
