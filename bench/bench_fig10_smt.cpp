//===- bench/bench_fig10_smt.cpp - Fig 10: SMT effect ---------------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Fig 10: speedup from running two pinned tasks per core versus
// one, as core count grows. SMT hides gather latency (Section III-D), so
// the paper sees up to 1.9-3.5x from SMT at low core counts, shrinking as
// memory contention grows. On hardware without SMT (or a 1-core
// container), oversubscription stands in for the second hardware thread
// and the curve is informational only.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Fig 10 - SMT: two tasks per core vs one", Env);
  TargetKind Target = bestTarget();
  int MaxCores = static_cast<int>(
      Env.Opts.getInt("max-cores", std::max(Env.NumTasks, 4)));

  std::vector<Input> Inputs = makeAllInputs(Env.Scale);
  const KernelKind Kernels[] = {KernelKind::BfsWl, KernelKind::SsspNf,
                                KernelKind::Mis};
  std::vector<double> SerialMs;
  for (const Input &In : Inputs)
    for (KernelKind Kind : Kernels)
      SerialMs.push_back(timeSerial(Kind, In, Env.Reps, Env.Verify));

  Table T({"cores", "no-SMT vs serial", "SMT vs serial", "SMT speedup"});
  for (int Cores = 1; Cores <= MaxCores; Cores *= 2) {
    double Geo1 = 0.0, Geo2 = 0.0;
    int K = 0;
    std::size_t Idx = 0;
    // no-SMT: one pinned task per core; SMT: two tasks per core.
    PinPolicy Pin{true, 1};
    auto Ts1 = makeTaskSystem(Env.TsKind, Cores, Pin);
    auto Ts2 = makeTaskSystem(Env.TsKind, 2 * Cores, Pin);
    for (const Input &In : Inputs)
      for (KernelKind Kind : Kernels) {
        KernelConfig C1 = KernelConfig::allOptimizations(*Ts1, Cores);
        KernelConfig C2 = KernelConfig::allOptimizations(*Ts2, 2 * Cores);
        double Ms1 = timeKernel(Kind, Target, In, C1, Env.Reps, false);
        double Ms2 = timeKernel(Kind, Target, In, C2, Env.Reps, false);
        Geo1 += std::log(SerialMs[Idx] / Ms1);
        Geo2 += std::log(SerialMs[Idx] / Ms2);
        ++Idx;
        ++K;
      }
    double S1 = std::exp(Geo1 / K), S2 = std::exp(Geo2 / K);
    T.addRow({Table::fmt(static_cast<std::uint64_t>(Cores)),
              Table::fmtSpeedup(S1), Table::fmtSpeedup(S2),
              Table::fmtSpeedup(S2 / S1)});
  }
  T.print();
  std::printf("\npaper shape: SMT helps most at low core counts (latency "
              "hiding for gathers) and fades or reverses once all cores "
              "contend for memory (Phi at 72 cores: 0.58x).\n");
  return 0;
}
