//===- bench/bench_fig7_width.cpp - Fig 7: SIMD width and AVX version -----===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Fig 7: per AVX target (AVX1-modelled scalar loops, AVX2 at
// widths 4/8/16, AVX512 at 8/16), speedup over the avx1-i32x4 baseline
// (solid lines) and dynamic operations normalized to avx1-i32x4 (dotted
// lines, measured with a single-task run like the paper's Pin runs).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>
#include <iterator>

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Fig 7 - SIMD width and AVX version", Env);
  auto TS = Env.makeTs();
  // tri/mst dominate runtime at every width without changing the trend;
  // pass --all-kernels=1 for the full Table VIII set.
  std::vector<KernelKind> Kernels;
  if (Env.Opts.getBool("all-kernels", false))
    Kernels.assign(std::begin(AllKernels), std::end(AllKernels));
  else
    Kernels = {KernelKind::BfsWl, KernelKind::BfsTp, KernelKind::Cc,
               KernelKind::SsspNf, KernelKind::Mis,  KernelKind::Pr};

  const TargetKind Targets[] = {
      TargetKind::Scalar4,  TargetKind::Scalar8,  TargetKind::Scalar16,
      TargetKind::Avx2x4,   TargetKind::Avx2x8,   TargetKind::Avx2x16,
      TargetKind::Avx512x8, TargetKind::Avx512x16,
  };

  for (const Input &In : makeAllInputs(Env.Scale)) {
    Table T({"target", "geomean speedup vs avx1-i32x4",
             "dynamic ops vs avx1-i32x4"});
    // Per-kernel baselines on the avx1-i32x4 target.
    std::vector<double> BaseMs, BaseOps;
    for (KernelKind Kind : Kernels) {
      KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
      BaseMs.push_back(timeKernel(Kind, TargetKind::Scalar4, In, Cfg,
                                  Env.Reps, Env.Verify));
      SerialTaskSystem OneTask;
      KernelConfig Prof = KernelConfig::allOptimizations(OneTask, 1);
      BaseOps.push_back(static_cast<double>(
          profileKernel(Kind, TargetKind::Scalar4, In, Prof)
              .get(Stat::SpmdOps)));
    }
    for (TargetKind Target : Targets) {
      if (!targetSupported(Target))
        continue;
      double GeoTime = 0.0, GeoOps = 0.0;
      int K = 0;
      for (KernelKind Kind : Kernels) {
        KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
        double Ms = timeKernel(Kind, Target, In, Cfg, Env.Reps, false);
        SerialTaskSystem OneTask;
        KernelConfig Prof = KernelConfig::allOptimizations(OneTask, 1);
        double Ops = static_cast<double>(
            profileKernel(Kind, Target, In, Prof).get(Stat::SpmdOps));
        GeoTime += std::log(BaseMs[static_cast<std::size_t>(K)] / Ms);
        GeoOps += std::log(Ops / BaseOps[static_cast<std::size_t>(K)]);
        ++K;
      }
      T.addRow({targetName(Target),
                Table::fmtSpeedup(std::exp(GeoTime / K)),
                Table::fmt(std::exp(GeoOps / K), 3)});
    }
    std::printf("--- input: %s ---\n", In.Name.c_str());
    T.print();
    std::printf("\n");
  }
  std::printf("paper shape: newer AVX versions execute fewer dynamic "
              "operations (gathers/predication); wider is usually faster "
              "for road/random, but avx2-i32x16's double-pumped halves can "
              "match or beat avx512-i32x16 on gather-bound skewed "
              "inputs.\n");
  return 0;
}
