//===- bench/bench_ablate_pinning.cpp - Thread pinning ablation -----------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablation of CPU pinning: the paper pins EGACS tasks for the scalability
// and SMT studies and reports that "pinning alone speeds up EGACS by 2% on
// average" (Section IV). This harness measures the same delta.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("ablation - task pinning (paper: ~2% average gain)", Env);
  TargetKind Target = bestTarget();

  auto Unpinned = makeTaskSystem(Env.TsKind, Env.NumTasks, PinPolicy{});
  auto Pinned =
      makeTaskSystem(Env.TsKind, Env.NumTasks, PinPolicy{true, 1});

  Table T({"kernel", "graph", "unpinned ms", "pinned ms", "pinning gain"});
  double Geo = 0.0;
  int N = 0;
  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind : {KernelKind::BfsWl, KernelKind::Cc,
                            KernelKind::SsspNf, KernelKind::Pr}) {
      KernelConfig CfgU = KernelConfig::allOptimizations(*Unpinned,
                                                         Env.NumTasks);
      KernelConfig CfgP =
          KernelConfig::allOptimizations(*Pinned, Env.NumTasks);
      double MsU = timeKernel(Kind, Target, In, CfgU, Env.Reps, Env.Verify);
      double MsP = timeKernel(Kind, Target, In, CfgP, Env.Reps, false);
      T.addRow({kernelName(Kind), In.Name, Table::fmt(MsU),
                Table::fmt(MsP), Table::fmtSpeedup(MsU / MsP)});
      Geo += std::log(MsU / MsP);
      ++N;
    }
  }
  T.print();
  std::printf("\ngeomean pinning gain: %.3fx\n", std::exp(Geo / N));
  return 0;
}
