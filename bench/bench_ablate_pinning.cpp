//===- bench/bench_ablate_pinning.cpp - Thread pinning ablation -----------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablation of CPU pinning: the paper pins EGACS tasks for the scalability
// and SMT studies and reports that "pinning alone speeds up EGACS by 2% on
// average" (Section IV). This harness measures the same delta.
//
//   $ bench_ablate_pinning --scale=8 [--reps=3] [--json=out.json]
//   $ bench_ablate_pinning --scale=5 --reps=1 --checkstats=1   # CI
//
// --checkstats=1 additionally verifies the pinned runs (unpinned runs are
// verified whenever --verify is on) and exits non-zero unless both task
// systems actually launched tasks for every measured cell.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  bool CheckStats = Env.Opts.getBool("checkstats", false);
  banner("ablation - task pinning (paper: ~2% average gain)", Env);
  TargetKind Target = bestTarget();

  auto Unpinned = makeTaskSystem(Env.TsKind, Env.NumTasks, PinPolicy{});
  auto Pinned =
      makeTaskSystem(Env.TsKind, Env.NumTasks, PinPolicy{true, 1});

  JsonLog Json(Env);
  Json.meta("harness", "bench_ablate_pinning");
  Json.meta("scale", std::to_string(Env.Scale));
  Json.meta("tasks", std::to_string(Env.NumTasks));
  Json.meta("target", targetName(Target));
  Json.setColumns(
      {"input", "kernel", "unpinned_ms", "pinned_ms", "speedup"});

  Table T({"kernel", "graph", "unpinned ms", "pinned ms", "pinning gain"});
  double Geo = 0.0;
  int N = 0;
  bool ChecksOk = true;
  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind : {KernelKind::BfsWl, KernelKind::Cc,
                            KernelKind::SsspNf, KernelKind::Pr}) {
      KernelConfig CfgU = KernelConfig::allOptimizations(*Unpinned,
                                                         Env.NumTasks);
      KernelConfig CfgP =
          KernelConfig::allOptimizations(*Pinned, Env.NumTasks);
      statsReset();
      StatsSnapshot Before = StatsSnapshot::capture();
      double MsU = timeKernel(Kind, Target, In, CfgU, Env.Reps, Env.Verify);
      StatsSnapshot MidSnap = StatsSnapshot::capture();
      double MsP = timeKernel(Kind, Target, In, CfgP, Env.Reps,
                              CheckStats && Env.Verify);
      StatsSnapshot After = StatsSnapshot::capture();
      if (CheckStats) {
        std::uint64_t LaunchesU =
            (MidSnap - Before).get(Stat::TaskLaunches);
        std::uint64_t LaunchesP = (After - MidSnap).get(Stat::TaskLaunches);
        if (LaunchesU == 0 || LaunchesP == 0) {
          std::fprintf(stderr,
                       "error: --checkstats: %s on %s launched no tasks "
                       "(unpinned=%llu pinned=%llu)\n",
                       kernelName(Kind), In.Name.c_str(),
                       static_cast<unsigned long long>(LaunchesU),
                       static_cast<unsigned long long>(LaunchesP));
          ChecksOk = false;
        }
      }
      T.addRow({kernelName(Kind), In.Name, Table::fmt(MsU),
                Table::fmt(MsP), Table::fmtSpeedup(MsU / MsP)});
      Json.record({In.Name, kernelName(Kind), Table::fmt(MsU, 3),
                   Table::fmt(MsP, 3), Table::fmt(MsU / MsP, 3)});
      Geo += std::log(MsU / MsP);
      ++N;
    }
  }
  T.print();
  std::printf("\ngeomean pinning gain: %.3fx\n", std::exp(Geo / N));
  return ChecksOk ? 0 : 1;
}
