//===- bench/bench_table9_vm.cpp - Table IX: virtual memory ---------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Table IX: slowdown of each benchmark when physical memory is
// limited to 75% and 50% of its footprint, for CPU demand paging (the
// paper's cgroups methodology) and GPU UVM (the paper's pinned-cudaMalloc
// methodology), via the trace-driven paging simulator. The paper's input
// is OSM-EUR (174M nodes); ours is a scaled road network of the same class.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "vm/AccessTrace.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::vm;

namespace {

std::string slowdownCell(double Slowdown) {
  // The paper prints DNF for runs beyond 5 hours (>5000x).
  if (Slowdown > 5000.0)
    return "DNF";
  return Table::fmt(Slowdown, 2);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Table IX - slowdown under limited physical memory", Env);
  // A larger road network (OSM-EUR stand-in); scale via --scale. Node ids
  // are shuffled: real road inputs are not numbered geographically, so
  // frontier gathers hit random pages (the mechanism behind the paper's
  // UVM collapse).
  int Side = 320 << (Env.Scale > 3 ? (Env.Scale - 3) / 2 : 0);
  Csr G = shuffleNodeIds(roadGraph(Side, Side, 0.05, 21), 22);
  // --layout=csr|hubcsr|sell: topology sweeps are traced through the
  // layout's real storage addresses, and the footprint includes the
  // layout's auxiliary arrays.
  LayoutKind LK = parseLayoutKind(Env.Opts.getString("layout", "csr"));
  AnyLayout Layout = AnyLayout::build(LK, G);
  std::printf("graph: %d nodes, %d arcs (road class, shuffled ids, "
              "OSM-EUR stand-in), layout=%s\n\n",
              G.numNodes(), G.numEdges(), layoutName(LK));

  Table T({"app", "footprint MB", "GPU 75%", "GPU 50%", "CPU 75%",
           "CPU 50%"});
  const char *Apps[] = {"bfs-wl", "cc", "tri", "sssp", "mis", "pr", "mst"};
  for (const char *App : Apps) {
    std::uint64_t Footprint = appFootprintBytes(App, Layout);
    auto Run = [&](bool Gpu, double Fraction) {
      std::uint64_t Resident =
          static_cast<std::uint64_t>(Fraction * Footprint);
      PagingSim Sim(Gpu ? PagingConfig::gpuUvm(Resident)
                        : PagingConfig::cpu(Resident));
      traceApp(App, Layout, 0, Sim);
      return Sim.slowdown();
    };
    T.addRow({App, Table::fmt(Footprint / (1024.0 * 1024.0), 1),
              slowdownCell(Run(true, 0.75)), slowdownCell(Run(true, 0.50)),
              slowdownCell(Run(false, 0.75)),
              slowdownCell(Run(false, 0.50))});
  }
  T.print();
  std::printf("\npaper shape: random-gather apps (bfs-wl, sssp, pr) thrash "
              "catastrophically under UVM (paper: >5000x, DNF) but degrade "
              "moderately under CPU paging; sweep-dominated apps (cc, tri, "
              "mis, mst) stay within ~2-60x everywhere.\n");
  return 0;
}
