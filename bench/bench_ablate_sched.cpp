//===- bench/bench_ablate_sched.cpp - Scheduling policy ablation ----------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablates the work-distribution policy (static blocks vs shared-cursor
// chunks vs work stealing) x chunk size over the paper's three graph
// classes. The paper's Nested Parallelism balances lanes *within* a vector;
// this harness measures the inter-task analogue: on power-law (rmat)
// inputs the static block holding the hubs is the straggler of every
// barrier episode.
//
// Columns:
//   wall ms      - end-to-end time on this machine (oversubscribed CI boxes
//                  serialize tasks, so wall clock mostly shows overhead);
//   crit-path ms - sum over barrier episodes of the slowest task's CPU time:
//                  the runtime a machine with >= tasks cores would see;
//   balance %    - mean task busy time / critical path (100% = no straggler);
//   chunks/stolen/steal-fail - scheduler instrumentation counters.
//
//   $ bench_ablate_sched --scale=10 --tasks=8 [--reps=3] [--verify=0]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

namespace {

struct PolicyCase {
  SchedPolicy Policy;
  std::int64_t Chunk;
  bool Guided;
  std::string name() const {
    std::string N = schedPolicyName(Policy);
    if (Policy != SchedPolicy::Static) {
      N += "/" + std::to_string(Chunk);
      if (Guided)
        N += "g";
    }
    return N;
  }
};

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  // Imbalance needs several tasks to show; default to 8 even on small CI
  // boxes (crit-path ms models the multi-core runtime either way).
  if (Env.Opts.getInt("tasks", -1) < 0 && Env.NumTasks < 8)
    Env.NumTasks = 8;
  banner("sched ablation - static vs chunked vs stealing", Env);
  TargetKind Target = bestTarget();
  auto TS = Env.makeTs();

  JsonLog Json(Env);
  Json.meta("harness", "bench_ablate_sched");
  Json.meta("scale", std::to_string(Env.Scale));
  Json.meta("tasks", std::to_string(Env.NumTasks));
  Json.setColumns({"input", "kernel", "sched", "wall_ms", "crit_ms",
                   "balance_pct", "chunks", "stolen", "steal_fail"});

  const KernelKind Kernels[] = {KernelKind::Pr, KernelKind::Tri,
                                KernelKind::Cc, KernelKind::BfsWl};
  const PolicyCase Cases[] = {
      {SchedPolicy::Static, 0, false},
      {SchedPolicy::Chunked, 256, false},
      {SchedPolicy::Chunked, 1024, false},
      {SchedPolicy::Chunked, 1024, true},
      {SchedPolicy::Stealing, 256, false},
      {SchedPolicy::Stealing, 1024, false},
      {SchedPolicy::Stealing, 4096, false},
  };

  for (const Input &In : makeAllInputs(Env.Scale)) {
    std::printf("-- %s (%d nodes, %d arcs) --\n", In.Name.c_str(),
                In.G.numNodes(), In.G.numEdges());
    Table T({"kernel", "sched", "wall ms", "crit-path ms", "balance %",
             "chunks", "stolen", "steal-fail"});
    for (KernelKind Kind : Kernels) {
      double StaticCrit = 0.0;
      for (const PolicyCase &C : Cases) {
        KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
        Cfg.Sched = C.Policy;
        if (C.Chunk > 0)
          Cfg.ChunkSize = C.Chunk;
        Cfg.GuidedChunks = C.Guided;
        Cfg.SchedInstrument = true;

        const Csr &G = graphFor(In, Kind);
        if (Env.Verify) {
          KernelOutput Out = runKernel(Kind, Target, G, Cfg, In.Source);
          if (!verifyKernelOutput(Kind, G, In.Source, Out, Cfg)) {
            std::fprintf(stderr, "error: %s on %s under %s failed "
                         "verification\n",
                         kernelName(Kind), In.Name.c_str(),
                         C.name().c_str());
            return 1;
          }
        }

        double Wall = 0.0;
        StatsSnapshot Before = StatsSnapshot::capture();
        for (int R = 0; R < Env.Reps; ++R)
          Wall += timeMs([&] { runKernel(Kind, Target, G, Cfg, In.Source); });
        StatsSnapshot D = StatsSnapshot::capture() - Before;
        Wall /= Env.Reps;

        double Reps = static_cast<double>(Env.Reps);
        double Crit =
            static_cast<double>(D.get(Stat::SchedCriticalNanos)) / Reps;
        double Busy =
            static_cast<double>(D.get(Stat::SchedTaskNanos)) / Reps;
        double Balance =
            Crit > 0.0 ? 100.0 * Busy / (Crit * Env.NumTasks) : 100.0;
        if (C.Policy == SchedPolicy::Static)
          StaticCrit = Crit;
        std::string CritCell = Table::fmt(Crit / 1e6, 2);
        if (C.Policy != SchedPolicy::Static && StaticCrit > 0.0 && Crit > 0.0)
          CritCell += Crit < StaticCrit ? " (-" : " (+";
        if (C.Policy != SchedPolicy::Static && StaticCrit > 0.0 && Crit > 0.0)
          CritCell += Table::fmt(100.0 * (Crit > StaticCrit
                                              ? Crit / StaticCrit - 1.0
                                              : 1.0 - Crit / StaticCrit),
                                 0) +
                      "%)";
        T.addRow({kernelName(Kind), C.name(), Table::fmt(Wall, 2), CritCell,
                  Table::fmt(Balance, 1),
                  Table::fmt(D.get(Stat::ChunksDispatched) /
                             static_cast<std::uint64_t>(Env.Reps)),
                  Table::fmt(D.get(Stat::ChunksStolen) /
                             static_cast<std::uint64_t>(Env.Reps)),
                  Table::fmt(D.get(Stat::StealFailures) /
                             static_cast<std::uint64_t>(Env.Reps))});
        Json.record({In.Name, kernelName(Kind), C.name(),
                     Table::fmt(Wall, 3), Table::fmt(Crit / 1e6, 3),
                     Table::fmt(Balance, 1),
                     Table::fmt(D.get(Stat::ChunksDispatched) /
                                static_cast<std::uint64_t>(Env.Reps)),
                     Table::fmt(D.get(Stat::ChunksStolen) /
                                static_cast<std::uint64_t>(Env.Reps)),
                     Table::fmt(D.get(Stat::StealFailures) /
                                static_cast<std::uint64_t>(Env.Reps))});
      }
    }
    T.print();
    std::printf("\n");
  }
  std::printf("expected shape: on rmat, chunked/stealing cut the critical "
              "path and lift balance %% for the skew-sensitive kernels (pr, "
              "tri); on road/random, static is already balanced and the "
              "dynamic policies should only add bounded overhead.\n");
  return 0;
}
