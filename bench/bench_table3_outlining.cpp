//===- bench/bench_table3_outlining.cpp - Table III: Iteration Outlining --===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Table III: BFS-WL on the road graph under every task system,
// with and without Iteration Outlining. The paper's finding: launch
// overhead differs wildly across task systems, and IO removes it, making
// total time nearly task-system independent.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Table III - BFS-WL launch overhead vs Iteration Outlining", Env);
  Input In = makeInput("road", Env.Scale);
  TargetKind Target = bestTarget();

  Table T({"task system", "no-IO ms", "IO ms", "IO speedup"});
  const TaskSystemKind Kinds[] = {TaskSystemKind::Spawn, TaskSystemKind::Pool,
                                  TaskSystemKind::SpinPool};
  for (TaskSystemKind Kind : Kinds) {
    auto TS = makeTaskSystem(Kind, Env.NumTasks);
    KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
    Cfg.IterationOutlining = false;
    double NoIo =
        timeKernel(KernelKind::BfsWl, Target, In, Cfg, Env.Reps, Env.Verify);
    Cfg.IterationOutlining = true;
    double Io =
        timeKernel(KernelKind::BfsWl, Target, In, Cfg, Env.Reps, false);
    T.addRow({TS->name(), Table::fmt(NoIo), Table::fmt(Io),
              Table::fmtSpeedup(NoIo / Io)});
  }
  T.print();
  std::printf("\npaper shape: IO equalizes task systems by removing "
              "launches from the critical path (road BFS has ~thousands of "
              "iterations).\n");
  return 0;
}
