//===- bench/bench_ablate_fibercount.cpp - Fiber cap ablation -------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablation of MaxNumFibersPerTask, which the paper "set empirically to 256
// to limit resource consumption while maximizing average speedup"
// (Section III-B1). Sweeps the cap on the fiber-eligible BFS variants.
//
//   $ bench_ablate_fibercount --scale=8 [--reps=3] [--json=out.json]
//   $ bench_ablate_fibercount --scale=5 --reps=1 --checkstats=1   # CI
//
// --checkstats=1 verifies every cap column (cap=1 disables the
// thread-block emulation entirely, so both extremes run through distinct
// code paths; the default run verifies only the first) and exits non-zero
// unless every measured cell executed barrier episodes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  bool CheckStats = Env.Opts.getBool("checkstats", false);
  banner("ablation - MaxNumFibersPerTask (paper default 256)", Env);
  auto TS = Env.makeTs();
  TargetKind Target = bestTarget();

  JsonLog Json(Env);
  Json.meta("harness", "bench_ablate_fibercount");
  Json.meta("scale", std::to_string(Env.Scale));
  Json.meta("tasks", std::to_string(Env.NumTasks));
  Json.meta("target", targetName(Target));
  Json.setColumns({"input", "kernel", "cap", "wall_ms", "barrier_waits"});

  Table T({"kernel", "graph", "cap=1", "cap=16", "cap=64", "cap=256",
           "cap=1024"});
  const int Caps[] = {1, 16, 64, 256, 1024};
  bool ChecksOk = true;
  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind : {KernelKind::BfsCx, KernelKind::BfsHb}) {
      std::vector<std::string> Cells{kernelName(Kind), In.Name};
      for (int Cap : Caps) {
        KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
        Cfg.MaxFibersPerTask = Cap;
        statsReset();
        StatsSnapshot Before = StatsSnapshot::capture();
        double Ms =
            timeKernel(Kind, Target, In, Cfg, Env.Reps,
                       Env.Verify && (CheckStats || Cap == Caps[0]));
        StatsSnapshot D = StatsSnapshot::capture() - Before;
        std::uint64_t Waits = D.get(Stat::BarrierWaits);
        if (CheckStats && Waits == 0) {
          std::fprintf(stderr,
                       "error: --checkstats: %s on %s with cap=%d executed "
                       "no barrier episodes\n",
                       kernelName(Kind), In.Name.c_str(), Cap);
          ChecksOk = false;
        }
        Cells.push_back(Table::fmt(Ms) + " ms");
        Json.record({In.Name, kernelName(Kind), std::to_string(Cap),
                     Table::fmt(Ms, 3), Table::fmt(Waits)});
      }
      T.addRow(std::move(Cells));
    }
  }
  T.print();
  std::printf("\ndesign note: a cap of 1 disables the thread-block "
              "emulation; very large caps grow per-fiber state past the "
              "cache. The paper's 256 balances the two.\n");
  return ChecksOk ? 0 : 1;
}
