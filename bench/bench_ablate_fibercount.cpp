//===- bench/bench_ablate_fibercount.cpp - Fiber cap ablation -------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablation of MaxNumFibersPerTask, which the paper "set empirically to 256
// to limit resource consumption while maximizing average speedup"
// (Section III-B1). Sweeps the cap on the fiber-eligible BFS variants.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("ablation - MaxNumFibersPerTask (paper default 256)", Env);
  auto TS = Env.makeTs();
  TargetKind Target = bestTarget();

  Table T({"kernel", "graph", "cap=1", "cap=16", "cap=64", "cap=256",
           "cap=1024"});
  const int Caps[] = {1, 16, 64, 256, 1024};
  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind : {KernelKind::BfsCx, KernelKind::BfsHb}) {
      std::vector<std::string> Cells{kernelName(Kind), In.Name};
      for (int Cap : Caps) {
        KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
        Cfg.MaxFibersPerTask = Cap;
        double Ms = timeKernel(Kind, Target, In, Cfg, Env.Reps,
                               Env.Verify && Cap == Caps[0]);
        Cells.push_back(Table::fmt(Ms) + " ms");
      }
      T.addRow(std::move(Cells));
    }
  }
  T.print();
  std::printf("\ndesign note: a cap of 1 disables the thread-block "
              "emulation; very large caps grow per-fiber state past the "
              "cache. The paper's 256 balances the two.\n");
  return 0;
}
