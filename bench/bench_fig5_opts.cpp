//===- bench/bench_fig5_opts.cpp - Fig 5: throughput optimizations --------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Fig 5: the effect of each optimization bundle over the
// unoptimized SIMD version, per kernel and graph: IO, IO+CC+NP, IO+Fibers,
// and all optimizations. Task-level CC is always applied with NP, as in
// the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

namespace {

struct OptConfig {
  const char *Name;
  bool Io, NpCc, Fibers;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Fig 5 - effect of throughput optimizations", Env);
  auto TS = Env.makeTs();
  TargetKind Target = bestTarget();

  const OptConfig Configs[] = {
      {"IO", true, false, false},
      {"IO+CC+NP", true, true, false},
      {"IO+Fibers", true, false, true},
      {"all", true, true, true},
  };

  Table T({"kernel", "graph", "unopt ms", "IO", "IO+CC+NP", "IO+Fibers",
           "all"});
  std::vector<double> GeoLog(4, 0.0);
  int N = 0;

  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind : AllKernels) {
      KernelConfig Unopt = KernelConfig::unoptimized(*TS, Env.NumTasks);
      double UnoptMs =
          timeKernel(Kind, Target, In, Unopt, Env.Reps, Env.Verify);
      std::vector<std::string> Cells{kernelName(Kind), In.Name,
                                     Table::fmt(UnoptMs)};
      int C = 0;
      for (const OptConfig &Opt : Configs) {
        KernelConfig Cfg = KernelConfig::unoptimized(*TS, Env.NumTasks);
        Cfg.IterationOutlining = Opt.Io;
        Cfg.NestedParallelism = Opt.NpCc;
        Cfg.CoopConversion = Opt.NpCc;
        Cfg.Fibers = Opt.Fibers;
        double Ms = timeKernel(Kind, Target, In, Cfg, Env.Reps, false);
        Cells.push_back(Table::fmtSpeedup(UnoptMs / Ms));
        GeoLog[static_cast<std::size_t>(C++)] += std::log(UnoptMs / Ms);
      }
      ++N;
      T.addRow(std::move(Cells));
    }
  }
  T.print();
  std::printf("\ngeomean speedup over unoptimized SIMD: IO %.2fx, IO+CC+NP "
              "%.2fx, IO+Fibers %.2fx, all %.2fx\n",
              std::exp(GeoLog[0] / N), std::exp(GeoLog[1] / N),
              std::exp(GeoLog[2] / N), std::exp(GeoLog[3] / N));
  std::printf("\npaper shape: all optimizations together win on average "
              "(paper: 1.67x), with individual kernels ranging from "
              "slowdown to >6x; Fibers help bfs-cx/bfs-hb most.\n");
  return 0;
}
