//===- bench/bench_ablate_npbuffer.cpp - NP staging buffer ablation -------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablation of the Nested Parallelism fine-grained staging buffer: larger
// buffers pack low-degree edges into fuller vectors across vertex chunks,
// smaller buffers keep the staged data hot in cache (a design trade-off of
// the inspector-executor in Section III-B2).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("ablation - NP staging buffer capacity (default 4096)", Env);
  auto TS = Env.makeTs();
  TargetKind Target = bestTarget();

  Table T({"kernel", "graph", "cap=64", "cap=512", "cap=4096", "cap=32768"});
  const int Caps[] = {64, 512, 4096, 32768};
  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind :
         {KernelKind::BfsWl, KernelKind::SsspNf, KernelKind::Cc}) {
      std::vector<std::string> Cells{kernelName(Kind), In.Name};
      for (int Cap : Caps) {
        KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
        Cfg.NpBufferCapacity = Cap;
        double Ms = timeKernel(Kind, Target, In, Cfg, Env.Reps,
                               Env.Verify && Cap == Caps[0]);
        Cells.push_back(Table::fmt(Ms) + " ms");
      }
      T.addRow(std::move(Cells));
    }
  }
  T.print();
  return 0;
}
