//===- bench/bench_ablate_npbuffer.cpp - NP staging buffer ablation -------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablation of the Nested Parallelism fine-grained staging buffer: larger
// buffers pack low-degree edges into fuller vectors across vertex chunks,
// smaller buffers keep the staged data hot in cache (a design trade-off of
// the inspector-executor in Section III-B2).
//
//   $ bench_ablate_npbuffer --scale=8 [--reps=3] [--json=out.json]
//   $ bench_ablate_npbuffer --scale=5 --reps=1 --checkstats=1   # CI
//
// --checkstats=1 verifies every capacity column (buffer size must never
// change results; the default run verifies only the first) and exits
// non-zero unless the smallest capacity on rmat actually drove edges
// through the gather-flush path (NeighborGatherLanes > 0, taken from one
// extra op-counted run — the lane counters sit behind the op-counting
// gate, and counting skews wall clock).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  bool CheckStats = Env.Opts.getBool("checkstats", false);
  banner("ablation - NP staging buffer capacity (default 4096)", Env);
  auto TS = Env.makeTs();
  TargetKind Target = bestTarget();

  JsonLog Json(Env);
  Json.meta("harness", "bench_ablate_npbuffer");
  Json.meta("scale", std::to_string(Env.Scale));
  Json.meta("tasks", std::to_string(Env.NumTasks));
  Json.meta("target", targetName(Target));
  Json.setColumns({"input", "kernel", "cap", "wall_ms", "gather_lanes"});

  Table T({"kernel", "graph", "cap=64", "cap=512", "cap=4096", "cap=32768"});
  const int Caps[] = {64, 512, 4096, 32768};
  bool ChecksOk = true;
  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind :
         {KernelKind::BfsWl, KernelKind::SsspNf, KernelKind::Cc}) {
      std::vector<std::string> Cells{kernelName(Kind), In.Name};
      for (int Cap : Caps) {
        KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
        Cfg.NpBufferCapacity = Cap;
        double Ms =
            timeKernel(Kind, Target, In, Cfg, Env.Reps,
                       Env.Verify && (CheckStats || Cap == Caps[0]));
        // The neighbor-lane counters sit behind the op-counting gate (and
        // counting skews wall clock), so take them from one extra run.
        statsReset();
        setOpCounting(true);
        StatsSnapshot Before = StatsSnapshot::capture();
        timeKernel(Kind, Target, In, Cfg, 1, false);
        StatsSnapshot D = StatsSnapshot::capture() - Before;
        setOpCounting(false);
        std::uint64_t GatherLanes = D.get(Stat::NeighborGatherLanes);
        if (CheckStats && In.Name == "rmat" && Cap == Caps[0] &&
            GatherLanes == 0) {
          std::fprintf(stderr,
                       "error: --checkstats: %s on rmat with cap=%d drove "
                       "no lanes through the staging-buffer gather flush\n",
                       kernelName(Kind), Cap);
          ChecksOk = false;
        }
        Cells.push_back(Table::fmt(Ms) + " ms");
        Json.record({In.Name, kernelName(Kind), std::to_string(Cap),
                     Table::fmt(Ms, 3), Table::fmt(GatherLanes)});
      }
      T.addRow(std::move(Cells));
    }
  }
  T.print();
  return ChecksOk ? 0 : 1;
}
