//===- bench/BenchCommon.h - Shared benchmark harness code ------*- C++ -*-===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-table/per-figure benchmark binaries: input
/// graph preparation (the paper's three graph classes at a configurable
/// scale), timed-and-verified kernel execution, and the default execution
/// configuration. Every harness accepts:
///
///   --scale=N   graph scale (default 3; paper-like sizes need ~10 and a
///               large machine)
///   --reps=N    timing repetitions (default 3; paper uses 20)
///   --tasks=N   ISPC-style task count (default: hardware threads)
///   --tasksys=S serial|spawn|pool|spin (default pool)
///   --sched=S   static|chunked|stealing work distribution (default static)
///   --chunk=N   chunk size for chunked/stealing (default 1024)
///   --guided=1  guided self-scheduling decay for chunked
///   --update=S  atomic|combined|privatized|blocked update engine policy
///               (default atomic)
///   --layout=S  csr|hubcsr|sell graph layout the kernels consume
///               (default csr)
///   --sigma=N   SELL-C-sigma sorting window in nodes (default 4096)
///   --prefetch=S none|rows|rows+props staged-loop prefetch policy
///               (default none, the exact pre-pipeline loops)
///   --pfdist=N  row-stage prefetch lookahead in vectors (default 8)
///   --direction=S push|pull|hybrid traversal direction for the
///               direction-capable kernels (default push)
///   --alpha=N   Beamer push->pull numerator for hybrid (default 15)
///   --beta=N    Beamer pull->push denominator for hybrid (default 18)
///   --json=P    also write the harness's measurements to P as JSON
///               (machine-readable perf trajectories)
///   --verify=0  skip output verification for faster sweeps
///   --trace=P   record per-round/per-operator spans for every kernel run
///               and export them as Chrome/Perfetto trace_event JSON to P
///               (EGACS_TRACE builds only; otherwise exits 2)
///   --trace-summary  print the per-round summary table at exit
///
/// or the equivalent EGACS_* environment variables.
///
//===----------------------------------------------------------------------===//

#ifndef EGACS_BENCH_BENCHCOMMON_H
#define EGACS_BENCH_BENCHCOMMON_H

#include "graph/Generators.h"
#include "kernels/Kernels.h"
#include "simd/Ops.h"
#include "simd/Targets.h"
#include "support/CpuInfo.h"
#include "support/Options.h"
#include "support/ParseEnum.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "trace/Trace.h"
#include "trace/TraceExport.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace egacs::bench {

/// A prepared benchmark input.
struct Input {
  std::string Name;   ///< "road", "rmat", or "random"
  Csr G;              ///< the graph (weights always present)
  Csr GSorted;        ///< destination-sorted variant (for tri)
  NodeId Source = 0;  ///< bfs/sssp source (highest-degree node)
};

/// The harness-wide tracing session, set by the live BenchEnv. timeKernel
/// and profileKernel attach it to every config they run, so harnesses that
/// build their own KernelConfig (most of them never call applySched) are
/// traced without per-site plumbing.
inline trace::TraceSession *&activeTrace() {
  static trace::TraceSession *S = nullptr;
  return S;
}

/// Common harness options parsed from argv/environment.
struct BenchEnv {
  Options Opts;
  int Scale;
  int Reps;
  int NumTasks;
  TaskSystemKind TsKind;
  SchedPolicy Sched;
  std::int64_t ChunkSize;
  bool Guided;
  UpdatePolicy Update;
  LayoutKind Layout;
  std::int32_t SellSigma;
  PrefetchPolicy Prefetch;
  int PrefetchDist;
  Direction Dir;
  int AlphaNum;
  int BetaDenom;
  std::string JsonPath;
  bool Verify;
  std::string TracePath;
  bool TraceSummary;
  /// Live tracing session when --trace/--trace-summary asked for one
  /// (EGACS_TRACE builds only); exported when the env is destroyed.
  std::unique_ptr<trace::TraceSession> Trace;

  BenchEnv(int Argc, char **Argv)
      : Opts(Argc, Argv),
        Scale(static_cast<int>(Opts.getInt("scale", 3))),
        Reps(static_cast<int>(Opts.getInt("reps", 3))),
        NumTasks(static_cast<int>(
            Opts.getInt("tasks", cpuInfo().HardwareThreads))),
        TsKind(parseTaskSystemKind(Opts.getString("tasksys", "pool"))),
        Sched(parseSchedPolicy(Opts.getString("sched", "static"))),
        ChunkSize(Opts.getInt("chunk", 1024)),
        Guided(Opts.getBool("guided", false)),
        Update(parseUpdatePolicy(Opts.getString("update", "atomic"))),
        Layout(parseLayoutKind(Opts.getString("layout", "csr"))),
        SellSigma(static_cast<std::int32_t>(Opts.getInt("sigma", 1 << 12))),
        Prefetch(parsePrefetchPolicy(Opts.getString("prefetch", "none"))),
        PrefetchDist(static_cast<int>(Opts.getInt("pfdist", 8))),
        Dir(parseDirection(Opts.getString("direction", "push"))),
        AlphaNum(static_cast<int>(Opts.getInt("alpha", 15))),
        BetaDenom(static_cast<int>(Opts.getInt("beta", 18))),
        JsonPath(Opts.getString("json", "")),
        Verify(Opts.getBool("verify", true)),
        TracePath(Opts.getString("trace", "")),
        TraceSummary(Opts.getBool("trace-summary", false)) {
    if (NumTasks < 1)
      NumTasks = 1;
    if (ChunkSize < 1)
      ChunkSize = 1;
    if (SellSigma < 1)
      SellSigma = 1;
#ifdef EGACS_TRACE
    if (!TracePath.empty() || TraceSummary) {
      Trace = std::make_unique<trace::TraceSession>();
      activeTrace() = Trace.get();
    }
#else
    // The knobs exist but the subsystem was compiled out: fail with the
    // uniform parse error (exit 2) instead of silently ignoring them.
    if (!TracePath.empty())
      parseEnumFail("option", "trace", "(none: built with EGACS_TRACE=OFF)");
    if (TraceSummary)
      parseEnumFail("option", "trace-summary",
                    "(none: built with EGACS_TRACE=OFF)");
#endif
  }

  ~BenchEnv() {
    exportTrace();
    if (Trace && activeTrace() == Trace.get())
      activeTrace() = nullptr;
  }
  BenchEnv(const BenchEnv &) = delete;
  BenchEnv &operator=(const BenchEnv &) = delete;

  /// Prints the per-round summary and/or writes the Chrome trace file, per
  /// the knobs. Runs once (the session stays readable afterwards).
  void exportTrace() {
    if (!Trace || TraceExported)
      return;
    TraceExported = true;
    if (TraceSummary)
      std::printf("\n%s", trace::renderTraceSummary(*Trace).c_str());
    if (!TracePath.empty() && trace::writeChromeTrace(*Trace, TracePath))
      std::printf("\ntrace: wrote %s (%zu runs, %zu rounds, %llu spans%s)\n",
                  TracePath.c_str(), Trace->runs().size(),
                  Trace->rounds().size(),
                  static_cast<unsigned long long>(totalSpans()),
                  Trace->perfAvailable() ? ", perf counters on"
                                         : ", perf counters unavailable");
  }

  /// Total operator spans retained across all task rings.
  std::uint64_t totalSpans() const {
    if (!Trace)
      return 0;
    std::uint64_t N = 0;
    for (std::size_t T = 0; T < Trace->numTasks(); ++T)
      N += Trace->task(T)->totalSpans() - Trace->task(T)->droppedSpans();
    return N;
  }

  /// Builds the configured task system.
  std::unique_ptr<TaskSystem> makeTs(int Workers = -1) const {
    return makeTaskSystem(TsKind, Workers < 0 ? NumTasks : Workers);
  }

  /// Applies the work-distribution, update-engine and layout knobs to a
  /// config. runKernel over a bare Csr honours Cfg.Layout by building the
  /// requested view on the fly.
  void applySched(KernelConfig &Cfg) const {
    Cfg.Sched = Sched;
    Cfg.ChunkSize = ChunkSize;
    Cfg.GuidedChunks = Guided;
    Cfg.Update = Update;
    Cfg.Layout = Layout;
    Cfg.SellSigma = SellSigma;
    Cfg.Prefetch = Prefetch;
    Cfg.PrefetchDist = PrefetchDist;
    Cfg.Dir = Dir;
    Cfg.AlphaNum = AlphaNum;
    Cfg.BetaDenom = BetaDenom;
    Cfg.Trace = Trace.get();
  }

private:
  bool TraceExported = false;
};

/// Machine-readable measurement output for the ablation harnesses
/// (--json=<path>). Rows mirror the printed table: named columns, one cell
/// list per record call. Cells that parse fully as numbers are emitted as
/// JSON numbers, everything else as strings. The file is written when the
/// log is destroyed (end of main); an empty path disables the log.
class JsonLog {
public:
  explicit JsonLog(std::string Path) : Path(std::move(Path)) {}
  /// Harness-standard form: takes the output path from --json and, when the
  /// env carries a tracing session, embeds a per-round trace digest in the
  /// written file (path of the full Chrome trace, round/span totals, and a
  /// bounded per-round [run, round, ms, frontier, direction] array).
  explicit JsonLog(const BenchEnv &Env) : Path(Env.JsonPath), Env(&Env) {}
  ~JsonLog() { write(); }
  JsonLog(const JsonLog &) = delete;
  JsonLog &operator=(const JsonLog &) = delete;

  bool enabled() const { return !Path.empty(); }

  /// Attaches a top-level key/value pair (harness name, scale, ...).
  void meta(const std::string &Key, const std::string &Value) {
    Meta.emplace_back(Key, Value);
  }

  void setColumns(std::vector<std::string> Cols) { Columns = std::move(Cols); }

  void record(std::vector<std::string> Cells) {
    Rows.push_back(std::move(Cells));
  }

private:
  static bool numeric(const std::string &S) {
    if (S.empty())
      return false;
    char *End = nullptr;
    std::strtod(S.c_str(), &End);
    return End != nullptr && *End == '\0';
  }

  static void appendEscaped(std::string &Out, const std::string &S) {
    Out += '"';
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += '"';
  }

  static void appendCell(std::string &Out, const std::string &S) {
    if (numeric(S))
      Out += S;
    else
      appendEscaped(Out, S);
  }

  void write() const {
    if (Path.empty())
      return;
    std::string Out = "{\n  \"meta\": {";
    for (std::size_t I = 0; I < Meta.size(); ++I) {
      Out += I ? ", " : "";
      appendEscaped(Out, Meta[I].first);
      Out += ": ";
      appendCell(Out, Meta[I].second);
    }
    Out += "},\n  \"columns\": [";
    for (std::size_t I = 0; I < Columns.size(); ++I) {
      Out += I ? ", " : "";
      appendEscaped(Out, Columns[I]);
    }
    Out += "],\n  \"rows\": [";
    for (std::size_t R = 0; R < Rows.size(); ++R) {
      Out += R ? ",\n    [" : "\n    [";
      for (std::size_t I = 0; I < Rows[R].size(); ++I) {
        Out += I ? ", " : "";
        appendCell(Out, Rows[R][I]);
      }
      Out += "]";
    }
    Out += "\n  ]";
    appendTrace(Out);
    Out += "\n}\n";
    if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
      std::fwrite(Out.data(), 1, Out.size(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "warning: cannot write --json file '%s'\n",
                   Path.c_str());
    }
  }

  /// When the harness env carries a live tracing session, embeds its
  /// digest under a top-level "trace" key (bounded: at most MaxRows
  /// per-round entries, with a truncation marker).
  void appendTrace(std::string &Out) const {
    if (Env == nullptr || !Env->Trace)
      return;
    const trace::TraceSession &S = *Env->Trace;
    constexpr std::size_t MaxRows = 1024;
    char Buf[192];
    Out += ",\n  \"trace\": {\n    \"path\": ";
    appendEscaped(Out, Env->TracePath);
    std::snprintf(Buf, sizeof(Buf),
                  ",\n    \"runs\": %zu, \"rounds\": %zu, \"spans\": %llu,"
                  " \"droppedRounds\": %llu, \"droppedSpans\": %llu,"
                  " \"perfAvailable\": %s,\n    \"perRound\": [",
                  S.runs().size(), S.rounds().size(),
                  static_cast<unsigned long long>(Env->totalSpans()),
                  static_cast<unsigned long long>(S.droppedRounds()),
                  static_cast<unsigned long long>(S.droppedSpans()),
                  S.perfAvailable() ? "true" : "false");
    Out += Buf;
    std::size_t Emit = S.rounds().size() < MaxRows ? S.rounds().size()
                                                   : MaxRows;
    for (std::size_t I = 0; I < Emit; ++I) {
      const trace::RoundRecord &R = S.rounds()[I];
      std::snprintf(Buf, sizeof(Buf), "%s\n      [%u, %u, %.3f, %lld, ",
                    I ? "," : "", static_cast<unsigned>(R.Run),
                    static_cast<unsigned>(R.Round),
                    static_cast<double>(R.EndNs - R.BeginNs) / 1e6,
                    static_cast<long long>(R.Frontier));
      Out += Buf;
      appendEscaped(Out, R.Mode);
      Out += "]";
    }
    Out += "\n    ]";
    if (Emit < S.rounds().size()) {
      std::snprintf(Buf, sizeof(Buf), ",\n    \"perRoundTruncated\": %zu",
                    S.rounds().size() - Emit);
      Out += Buf;
    }
    Out += "\n  }";
  }

  std::string Path;
  const BenchEnv *Env = nullptr;
  std::vector<std::pair<std::string, std::string>> Meta;
  std::vector<std::string> Columns;
  std::vector<std::vector<std::string>> Rows;
};

/// Prepares one named input at the harness scale.
inline Input makeInput(const std::string &Name, int Scale) {
  Input In;
  In.Name = Name;
  In.G = namedGraph(Name, Scale);
  In.GSorted = In.G.sortedByDestination();
  // Seed traversals from the highest-degree node so every run explores a
  // large component (the paper's sources sit in the giant component).
  EdgeId BestDeg = -1;
  for (NodeId N = 0; N < In.G.numNodes(); ++N)
    if (In.G.degree(N) > BestDeg) {
      BestDeg = In.G.degree(N);
      In.Source = N;
    }
  return In;
}

/// The paper's three inputs.
inline std::vector<Input> makeAllInputs(int Scale) {
  std::vector<Input> Inputs;
  Inputs.push_back(makeInput("road", Scale));
  Inputs.push_back(makeInput("rmat", Scale));
  Inputs.push_back(makeInput("random", Scale));
  return Inputs;
}

/// Selects the graph variant a kernel needs.
inline const Csr &graphFor(const Input &In, KernelKind Kind) {
  return kernelNeedsSortedAdjacency(Kind) ? In.GSorted : In.G;
}

/// Runs \p Kind \p Reps times and returns the average milliseconds;
/// verifies the first run's output when \p Verify is set.
inline double timeKernel(KernelKind Kind, simd::TargetKind Target,
                         const Input &In, const KernelConfig &BaseCfg,
                         int Reps, bool Verify) {
  const Csr &G = graphFor(In, Kind);
  KernelConfig Cfg = BaseCfg;
  if (Cfg.Trace == nullptr)
    Cfg.Trace = activeTrace();
  if (Verify) {
    KernelOutput Out = runKernel(Kind, Target, G, Cfg, In.Source);
    if (!verifyKernelOutput(Kind, G, In.Source, Out, Cfg)) {
      std::fprintf(stderr,
                   "error: %s on %s with %s failed verification\n",
                   kernelName(Kind), In.Name.c_str(),
                   simd::targetName(Target));
      std::exit(1);
    }
  }
  double Total = 0.0;
  for (int R = 0; R < Reps; ++R)
    Total += timeMs([&] { runKernel(Kind, Target, G, Cfg, In.Source); });
  return Total / Reps;
}

/// Runs once with dynamic-operation counting enabled and returns the
/// counter deltas (the Pin stand-in).
inline StatsSnapshot profileKernel(KernelKind Kind, simd::TargetKind Target,
                                   const Input &In,
                                   const KernelConfig &BaseCfg) {
  const Csr &G = graphFor(In, Kind);
  KernelConfig Cfg = BaseCfg;
  if (Cfg.Trace == nullptr)
    Cfg.Trace = activeTrace();
  simd::setOpCounting(true);
  StatsSnapshot Before = StatsSnapshot::capture();
  runKernel(Kind, Target, G, Cfg, In.Source);
  StatsSnapshot Delta = StatsSnapshot::capture() - Before;
  simd::setOpCounting(false);
  return Delta;
}

/// The serial baseline: the SPMD code at width 1 with one task (paper IV-A).
inline double timeSerial(KernelKind Kind, const Input &In, int Reps,
                         bool Verify) {
  SerialTaskSystem TS;
  KernelConfig Cfg = KernelConfig::allOptimizations(TS, 1);
  return timeKernel(Kind, simd::TargetKind::Scalar1, In, Cfg, Reps, Verify);
}

/// The best SIMD target this machine supports.
inline simd::TargetKind bestTarget() {
  if (simd::targetSupported(simd::TargetKind::Avx512x16))
    return simd::TargetKind::Avx512x16;
  if (simd::targetSupported(simd::TargetKind::Avx2x8))
    return simd::TargetKind::Avx2x8;
  return simd::TargetKind::Scalar8;
}

/// Prints the standard harness banner.
inline void banner(const char *What, const BenchEnv &Env) {
  std::printf("== EGACS reproduction: %s ==\n", What);
  std::printf("machine: %d hw threads, avx2=%d avx512=%d | scale=%d "
              "reps=%d tasks=%d tasksys=%d\n\n",
              cpuInfo().HardwareThreads, cpuInfo().HasAvx2,
              cpuInfo().HasAvx512f, Env.Scale, Env.Reps, Env.NumTasks,
              static_cast<int>(Env.TsKind));
}

} // namespace egacs::bench

#endif // EGACS_BENCH_BENCHCOMMON_H
