//===- bench/bench_ablate_layout.cpp - Graph-layout ablation --------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablates the graph storage layout (graph/GraphView.h) over layout x graph
// class x kernel. The paper hard-wires CSR and pays one hardware gather per
// neighbor vector (its Table VI); this harness measures how much of that
// gather traffic the alternative layouts convert into unit-stride vector
// loads, and what they pay for it:
//
//   gather-ln / contig-ln - neighbor lanes fetched by a hardware gather vs
//                           by a contiguous vector load over SELL slices
//                           (the op-counting stand-in for the paper's Pin
//                           numbers: one counted run, not timed);
//   contig%               - contig-ln / (gather-ln + contig-ln);
//   build ms              - one-time layout construction cost (hub/sell
//                           permutation sort + slicing), outside the
//                           kernel timings;
//   aux MB                - layout metadata beyond the CSR arrays;
//   pad%                  - SELL padding entries relative to real edges.
//
// Topology-driven sweeps (bfs-tp, pr) run slot-aligned and convert their
// low-degree lanes; worklist-driven kernels (cc, sssp) traverse in
// frontier order and legitimately stay on the CSR gather surface, so their
// rows show what the layout does NOT buy. (Heavy NP-bin rows read
// contiguously under every layout - a long row is unit-stride even in
// CSR - so csr rows on hub-heavy inputs already show a contig share.)
//
// A per-input sigma sweep prints the SELL padding/locality trade-off ahead
// of the table (sigma = C keeps the original order but pads every chunk to
// its longest row; sigma = n is full degree sorting with minimal padding).
//
//   $ bench_ablate_layout --scale=10 --tasks=8 [--reps=3] [--sigma=4096]
//   $ bench_ablate_layout --scale=4 --reps=1 --checkstats=1   # CI
//
// --checkstats=1 exits non-zero unless, on the rmat input, (a) the CSR
// sweeps actually issue neighbor gathers and the SELL sweeps actually issue
// contiguous loads, and (b) SELL converts >= 50% of bfs-tp's and pr's
// neighbor gather lanes into contiguous loads.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

namespace {

struct Measurement {
  double WallMs = 0.0;
  std::uint64_t GatherLanes = 0;
  std::uint64_t ContigLanes = 0;

  double contigPercent() const {
    std::uint64_t Total = GatherLanes + ContigLanes;
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(ContigLanes) /
                            static_cast<double>(Total);
  }
};

/// Times \p Reps uncounted runs, then takes the gather/contig lane split
/// from one extra counted run (the neighbor-lane counters sit behind the
/// op-counting gate like the rest of the Pin stand-in, and counting skews
/// wall clock).
Measurement measure(KernelKind Kind, TargetKind Target, const AnyLayout &L,
                    NodeId Source, const KernelConfig &Cfg, int Reps) {
  Measurement M;
  for (int R = 0; R < Reps; ++R)
    M.WallMs += timeMs([&] { runKernel(Kind, Target, L, Cfg, Source); });
  M.WallMs /= Reps;
  statsReset();
  setOpCounting(true);
  StatsSnapshot Before = StatsSnapshot::capture();
  runKernel(Kind, Target, L, Cfg, Source);
  StatsSnapshot D = StatsSnapshot::capture() - Before;
  setOpCounting(false);
  M.GatherLanes = D.get(Stat::NeighborGatherLanes);
  M.ContigLanes = D.get(Stat::NeighborContigLanes);
  return M;
}

void printSigmaSweep(const Input &In, std::int32_t Chunk) {
  std::printf("sell padding on %s at C=%d:", In.Name.c_str(), Chunk);
  const std::int32_t Sigmas[] = {Chunk, 256, 1 << 12, 1 << 16};
  for (std::int32_t Sigma : Sigmas) {
    if (Sigma < Chunk)
      continue;
    SellImage Img = buildSellImage(In.G, Chunk, Sigma);
    double Pad =
        In.G.numEdges() == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(Img.storedEntries() - In.G.numEdges()) /
                  static_cast<double>(In.G.numEdges());
    std::printf("  sigma=%d -> %s%%", Sigma, Table::fmt(Pad, 1).c_str());
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  bool CheckStats = Env.Opts.getBool("checkstats", false);
  banner("graph-layout ablation - csr vs hubcsr vs sell-c-sigma", Env);
  TargetKind Target = bestTarget();
  auto TS = Env.makeTs();
  std::int32_t Chunk = static_cast<std::int32_t>(targetWidth(Target));
  std::printf("target: %s (C=%d), sigma=%d\n\n", targetName(Target), Chunk,
              Env.SellSigma);

  JsonLog Json(Env);
  Json.meta("harness", "bench_ablate_layout");
  Json.meta("scale", std::to_string(Env.Scale));
  Json.meta("tasks", std::to_string(Env.NumTasks));
  Json.setColumns({"input", "kernel", "layout", "wall_ms", "gather_lanes",
                   "contig_lanes", "contig_pct"});

  // Tri is excluded: it wants destination-sorted adjacency and the layouts
  // here are built over the plain graph.
  const KernelKind Kernels[] = {KernelKind::BfsTp, KernelKind::Cc,
                                KernelKind::SsspNf, KernelKind::Pr};

  bool ChecksOk = true;
  for (const Input &In : makeAllInputs(Env.Scale)) {
    std::printf("-- %s (%d nodes, %d arcs) --\n", In.Name.c_str(),
                In.G.numNodes(), In.G.numEdges());
    printSigmaSweep(In, Chunk);

    // Build each layout once, outside the kernel timings.
    AnyLayout Layouts[NumLayoutKinds];
    double BuildMs[NumLayoutKinds];
    for (int LI = 0; LI < NumLayoutKinds; ++LI) {
      LayoutOptions Opts;
      Opts.SellChunk = Chunk;
      Opts.SellSigma = Env.SellSigma;
      BuildMs[LI] = timeMs([&] {
        Layouts[LI] = AnyLayout::build(AllLayoutKinds[LI], In.G, Opts);
      });
    }

    Table T({"kernel", "layout", "wall ms", "gather-ln", "contig-ln",
             "contig%", "build ms", "aux MB", "pad%"});
    for (KernelKind Kind : Kernels) {
      Measurement PerLayout[NumLayoutKinds];
      for (int LI = 0; LI < NumLayoutKinds; ++LI) {
        LayoutKind LK = AllLayoutKinds[LI];
        const AnyLayout &L = Layouts[LI];
        KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
        Env.applySched(Cfg);
        Cfg.Layout = LK; // informational; L is prebuilt
        Cfg.SellSigma = Env.SellSigma;

        if (Env.Verify) {
          KernelOutput Out = runKernel(Kind, Target, L, Cfg, In.Source);
          if (!verifyKernelOutput(Kind, In.G, In.Source, Out, Cfg)) {
            std::fprintf(stderr,
                         "error: %s on %s under layout=%s failed "
                         "verification\n",
                         kernelName(Kind), In.Name.c_str(), layoutName(LK));
            return 1;
          }
        }

        Measurement M =
            measure(Kind, Target, L, In.Source, Cfg, Env.Reps);
        PerLayout[LI] = M;

        const SellView *SV = L.sell();
        T.addRow({kernelName(Kind), layoutName(LK), Table::fmt(M.WallMs, 2),
                  Table::fmt(M.GatherLanes), Table::fmt(M.ContigLanes),
                  Table::fmt(M.contigPercent(), 1),
                  Table::fmt(BuildMs[LI], 2),
                  Table::fmt(L.layoutAuxBytes() / (1024.0 * 1024.0), 2),
                  SV ? Table::fmt(SV->paddingOverheadPercent(), 1) : "-"});
        Json.record({In.Name, kernelName(Kind), layoutName(LK),
                     Table::fmt(M.WallMs, 3), Table::fmt(M.GatherLanes),
                     Table::fmt(M.ContigLanes),
                     Table::fmt(M.contigPercent(), 1)});
      }

      if (CheckStats && In.Name == "rmat" &&
          (Kind == KernelKind::BfsTp || Kind == KernelKind::Pr)) {
        const Measurement &CsrM = PerLayout[0];
        const Measurement &SellM = PerLayout[2];
        // (a) both sides of the counter pair must be live.
        if (CsrM.GatherLanes == 0 || SellM.ContigLanes == 0) {
          std::fprintf(
              stderr,
              "error: --checkstats: %s/rmat lane counters are zero "
              "(csr gather-ln=%llu sell contig-ln=%llu)\n",
              kernelName(Kind),
              static_cast<unsigned long long>(CsrM.GatherLanes),
              static_cast<unsigned long long>(SellM.ContigLanes));
          ChecksOk = false;
        }
        // (b) sell must convert >= 50% of the csr gather lanes into
        // contiguous loads (the low-degree bins; hub rows stay gathered).
        if (SellM.GatherLanes * 2 > CsrM.GatherLanes) {
          std::fprintf(
              stderr,
              "error: --checkstats: sell left %llu of %llu %s/rmat "
              "gather lanes unconverted (> 50%%)\n",
              static_cast<unsigned long long>(SellM.GatherLanes),
              static_cast<unsigned long long>(CsrM.GatherLanes),
              kernelName(Kind));
          ChecksOk = false;
        }
      }
    }
    T.print();
    std::printf("\n");
  }
  std::printf(
      "expected shape: topology sweeps (bfs-tp, pr) convert their "
      "low-degree neighbor lanes into contiguous SELL loads (gather-ln "
      "collapsing to 0, contig%% = 100); hubcsr keeps the gather count but "
      "packs degree-homogeneous vectors for the NP bins; worklist-order "
      "kernels (cc, sssp) stay on the CSR gather surface under every "
      "layout. Padding falls as sigma grows; rmat needs the large windows, "
      "road is near-uniform and barely pads.\n");
  return ChecksOk ? 0 : 1;
}
