//===- bench/bench_table5_atomics.cpp - Table V: cooperative conversion ---===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Table V: atomic worklist pushes, unoptimized vs task-level
// Cooperative Conversion vs fiber-level CC (applicable to bfs-cx/bfs-hb
// only). NP is always enabled alongside CC, as in the paper ("we always
// enable nested parallelism since it increases the number of active program
// instances").
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

namespace {

std::uint64_t countPushAtomics(KernelKind Kind, TargetKind Target,
                               const Input &In, const KernelConfig &Cfg) {
  statsReset();
  runKernel(Kind, Target, graphFor(In, Kind), Cfg, In.Source);
  return statGet(Stat::AtomicPushes);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Table V - atomic worklist pushes under Cooperative Conversion",
         Env);
  Input In = makeInput("road", Env.Scale);
  TargetKind Target = bestTarget();
  auto TS = Env.makeTs();

  Table T({"kernel", "unopt atomics", "task-CC", "reduction", "fiber-CC",
           "total reduction"});
  const KernelKind Kernels[] = {KernelKind::BfsWl, KernelKind::BfsCx,
                                KernelKind::BfsHb, KernelKind::SsspNf,
                                KernelKind::Cc,    KernelKind::Mis};
  for (KernelKind Kind : Kernels) {
    KernelConfig Unopt = KernelConfig::unoptimized(*TS, Env.NumTasks);
    Unopt.IterationOutlining = true;
    std::uint64_t Naive = countPushAtomics(Kind, Target, In, Unopt);

    KernelConfig Cc = Unopt;
    Cc.NestedParallelism = true;
    Cc.CoopConversion = true;
    std::uint64_t TaskCc = countPushAtomics(Kind, Target, In, Cc);

    // Fibers enable fiber-level aggregation only in bfs-cx / bfs-hb.
    KernelConfig Fib = Cc;
    Fib.Fibers = true;
    std::uint64_t FiberCc = countPushAtomics(Kind, Target, In, Fib);

    bool FiberApplies =
        Kind == KernelKind::BfsCx || Kind == KernelKind::BfsHb;
    T.addRow({kernelName(Kind), Table::fmt(Naive), Table::fmt(TaskCc),
              Table::fmtSpeedup(TaskCc ? static_cast<double>(Naive) /
                                             static_cast<double>(TaskCc)
                                       : 1.0),
              FiberApplies ? Table::fmt(FiberCc) : "n/a",
              FiberApplies && FiberCc
                  ? Table::fmtSpeedup(static_cast<double>(Naive) /
                                      static_cast<double>(FiberCc))
                  : "-"});
  }
  T.print();
  std::printf("\npaper shape: task-CC cuts pushes by the average active "
              "lane count; fiber-CC (bfs-cx/bfs-hb) reaches ~1 atomic per "
              "task per round (paper: 125x total for bfs-cx).\n");
  return 0;
}
