//===- bench/bench_table5_atomics.cpp - Table V: cooperative conversion ---===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Table V: atomic worklist pushes, unoptimized vs task-level
// Cooperative Conversion vs fiber-level CC (applicable to bfs-cx/bfs-hb
// only). NP is always enabled alongside CC, as in the paper ("we always
// enable nested parallelism since it increases the number of active program
// instances").
//
// Next to the push counts the table surfaces the CAS instrumentation of
// the relaxation loops (simd/Atomics.h): hardware compare-exchange attempts
// and the failures that had to retry, measured on the task-CC
// configuration. Pass --checkstats=1 (CI smoke mode) to exit non-zero when
// the push or CAS counters stay zero.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

namespace {

struct AtomicCounts {
  std::uint64_t Pushes = 0;
  std::uint64_t CasAttempts = 0;
  std::uint64_t CasFailures = 0;
};

AtomicCounts countPushAtomics(KernelKind Kind, TargetKind Target,
                              const Input &In, const KernelConfig &Cfg) {
  statsReset();
  runKernel(Kind, Target, graphFor(In, Kind), Cfg, In.Source);
  AtomicCounts C;
  C.Pushes = statGet(Stat::AtomicPushes);
  C.CasAttempts = statGet(Stat::CasAttempts);
  C.CasFailures = statGet(Stat::CasFailures);
  return C;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Table V - atomic worklist pushes under Cooperative Conversion",
         Env);
  Input In = makeInput("road", Env.Scale);
  TargetKind Target = bestTarget();
  auto TS = Env.makeTs();

  bool CheckStats = Env.Opts.getBool("checkstats", false);
  std::uint64_t TotalPushes = 0, TotalCasAttempts = 0;

  Table T({"kernel", "unopt atomics", "task-CC", "reduction", "fiber-CC",
           "total reduction", "cas-att", "cas-fail"});
  const KernelKind Kernels[] = {KernelKind::BfsWl, KernelKind::BfsCx,
                                KernelKind::BfsHb, KernelKind::SsspNf,
                                KernelKind::Cc,    KernelKind::Mis};
  for (KernelKind Kind : Kernels) {
    KernelConfig Unopt = KernelConfig::unoptimized(*TS, Env.NumTasks);
    Unopt.IterationOutlining = true;
    AtomicCounts Naive = countPushAtomics(Kind, Target, In, Unopt);

    KernelConfig Cc = Unopt;
    Cc.NestedParallelism = true;
    Cc.CoopConversion = true;
    AtomicCounts TaskCc = countPushAtomics(Kind, Target, In, Cc);

    // Fibers enable fiber-level aggregation only in bfs-cx / bfs-hb.
    KernelConfig Fib = Cc;
    Fib.Fibers = true;
    AtomicCounts FiberCc = countPushAtomics(Kind, Target, In, Fib);

    bool FiberApplies =
        Kind == KernelKind::BfsCx || Kind == KernelKind::BfsHb;
    T.addRow({kernelName(Kind), Table::fmt(Naive.Pushes),
              Table::fmt(TaskCc.Pushes),
              Table::fmtSpeedup(TaskCc.Pushes
                                    ? static_cast<double>(Naive.Pushes) /
                                          static_cast<double>(TaskCc.Pushes)
                                    : 1.0),
              FiberApplies ? Table::fmt(FiberCc.Pushes) : "n/a",
              FiberApplies && FiberCc.Pushes
                  ? Table::fmtSpeedup(static_cast<double>(Naive.Pushes) /
                                      static_cast<double>(FiberCc.Pushes))
                  : "-",
              Table::fmt(TaskCc.CasAttempts),
              Table::fmt(TaskCc.CasFailures)});
    TotalPushes += TaskCc.Pushes;
    TotalCasAttempts += TaskCc.CasAttempts;
  }
  T.print();
  std::printf("\npaper shape: task-CC cuts pushes by the average active "
              "lane count; fiber-CC (bfs-cx/bfs-hb) reaches ~1 atomic per "
              "task per round (paper: 125x total for bfs-cx). cas-att / "
              "cas-fail are the relaxation loops' compare-exchange attempts "
              "and retried failures (task-CC config).\n");
  if (CheckStats && (TotalPushes == 0 || TotalCasAttempts == 0)) {
    std::fprintf(stderr,
                 "error: --checkstats: expected nonzero push (%llu) and CAS "
                 "attempt (%llu) counters (is EGACS_STATS off?)\n",
                 static_cast<unsigned long long>(TotalPushes),
                 static_cast<unsigned long long>(TotalCasAttempts));
    return 1;
  }
  return 0;
}
