//===- bench/bench_fig6_breakdown.cpp - Fig 6: SIMD vs multi-tasking ------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Fig 6: the contributions of SIMD and multi-tasking over the
// serial version: +SIMD (one task, full width), +MT (width 1, all tasks),
// +MT+SIMD, and +MT+SIMD+Opt.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Fig 6 - SIMD vs multi-tasking breakdown", Env);
  auto TS = Env.makeTs();
  TargetKind Simd = bestTarget();

  Table T({"kernel", "graph", "serial ms", "+SIMD", "+MT", "+MT+SIMD",
           "+MT+SIMD+Opt"});
  std::vector<double> GeoLog(4, 0.0);
  int N = 0;

  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind : AllKernels) {
      double SerialMs = timeSerial(Kind, In, Env.Reps, Env.Verify);

      // +SIMD: full width, one task; no throughput optimizations beyond IO
      // (launches are not the quantity under study).
      SerialTaskSystem OneTask;
      KernelConfig SimdCfg = KernelConfig::unoptimized(OneTask, 1);
      SimdCfg.IterationOutlining = true;
      double SimdMs = timeKernel(Kind, Simd, In, SimdCfg, Env.Reps, false);

      // +MT: width 1, all tasks.
      KernelConfig MtCfg = KernelConfig::unoptimized(*TS, Env.NumTasks);
      MtCfg.IterationOutlining = true;
      double MtMs = timeKernel(Kind, TargetKind::Scalar1, In, MtCfg,
                               Env.Reps, false);

      // +MT+SIMD.
      double MtSimdMs = timeKernel(Kind, Simd, In, MtCfg, Env.Reps, false);

      // +MT+SIMD+Opt.
      KernelConfig All = KernelConfig::allOptimizations(*TS, Env.NumTasks);
      double AllMs = timeKernel(Kind, Simd, In, All, Env.Reps, false);

      T.addRow({kernelName(Kind), In.Name, Table::fmt(SerialMs),
                Table::fmtSpeedup(SerialMs / SimdMs),
                Table::fmtSpeedup(SerialMs / MtMs),
                Table::fmtSpeedup(SerialMs / MtSimdMs),
                Table::fmtSpeedup(SerialMs / AllMs)});
      GeoLog[0] += std::log(SerialMs / SimdMs);
      GeoLog[1] += std::log(SerialMs / MtMs);
      GeoLog[2] += std::log(SerialMs / MtSimdMs);
      GeoLog[3] += std::log(SerialMs / AllMs);
      ++N;
    }
  }
  T.print();
  std::printf("\ngeomean speedup over serial: +SIMD %.2fx, +MT %.2fx, "
              "+MT+SIMD %.2fx, +MT+SIMD+Opt %.2fx\n",
              std::exp(GeoLog[0] / N), std::exp(GeoLog[1] / N),
              std::exp(GeoLog[2] / N), std::exp(GeoLog[3] / N));
  std::printf("\npaper shape: SIMD and MT each help alone; combined they "
              "multiply, and throughput optimizations add another ~1.67x. "
              "NOTE: on a 1-core container +MT adds no real parallelism — "
              "the SIMD axis is the meaningful one there.\n");
  return 0;
}
