//===- bench/bench_table6_gather.cpp - Table VI: gather load latency ------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Table VI: average per-word load-to-use latency of AVX2/AVX512
// gathers versus batches of independent scalar loads, with the working set
// sized to hit a particular cache level. Chains are dependent (the loaded
// value is the next index), so out-of-order hardware can overlap the
// independent scalar chains but a gather cannot complete until its slowest
// lane does — the paper's explanation for Scalar8 beating the AVX2 gather.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/AlignedBuffer.h"
#include "support/Rng.h"

#if defined(EGACS_HAVE_AVX2) || defined(EGACS_HAVE_AVX512)
#include <immintrin.h>
#endif

using namespace egacs;
using namespace egacs::bench;

namespace {

/// Builds a random single-cycle permutation over [0, N) so every chain
/// visits the whole working set (classic pointer-chase construction).
AlignedBuffer<std::int32_t> makeChase(std::int32_t N, std::uint64_t Seed) {
  std::vector<std::int32_t> Order(static_cast<std::size_t>(N));
  for (std::int32_t I = 0; I < N; ++I)
    Order[static_cast<std::size_t>(I)] = I;
  Xoshiro256 Rng(Seed);
  for (std::int32_t I = N - 1; I > 0; --I)
    std::swap(Order[static_cast<std::size_t>(I)],
              Order[Rng.nextBounded(static_cast<std::uint64_t>(I) + 1)]);
  AlignedBuffer<std::int32_t> Chase(static_cast<std::size_t>(N));
  for (std::int32_t I = 0; I < N; ++I)
    Chase[static_cast<std::size_t>(Order[static_cast<std::size_t>(I)])] =
        Order[static_cast<std::size_t>((I + 1) % N)];
  return Chase;
}

/// K independent scalar chains; returns ns per loaded word.
template <int K>
double scalarChains(const std::int32_t *Chase, std::int32_t N, int Iters) {
  std::int32_t Cursor[K];
  for (int C = 0; C < K; ++C)
    Cursor[C] = (N / K) * C;
  Timer T;
  T.start();
  for (int I = 0; I < Iters; ++I)
    for (int C = 0; C < K; ++C)
      Cursor[C] = Chase[Cursor[C]];
  T.stop();
  // Defeat dead-code elimination.
  std::int32_t Sink = 0;
  for (int C = 0; C < K; ++C)
    Sink ^= Cursor[C];
  if (Sink == 0x7fffffff)
    std::puts("");
  return static_cast<double>(T.nanoseconds()) / Iters / K;
}

#ifdef EGACS_HAVE_AVX2
double avx2GatherChain(const std::int32_t *Chase, std::int32_t N,
                       int Iters) {
  __m256i V = _mm256_setr_epi32(0, N / 8, 2 * (N / 8), 3 * (N / 8),
                                4 * (N / 8), 5 * (N / 8), 6 * (N / 8),
                                7 * (N / 8));
  Timer T;
  T.start();
  for (int I = 0; I < Iters; ++I)
    V = _mm256_i32gather_epi32(Chase, V, 4);
  T.stop();
  alignas(32) std::int32_t Out[8];
  _mm256_store_si256(reinterpret_cast<__m256i *>(Out), V);
  if (Out[0] == 0x7fffffff)
    std::puts("");
  return static_cast<double>(T.nanoseconds()) / Iters / 8;
}
#endif

#ifdef EGACS_HAVE_AVX512
double avx512GatherChain(const std::int32_t *Chase, std::int32_t N,
                         int Iters) {
  alignas(64) std::int32_t Init[16];
  for (int L = 0; L < 16; ++L)
    Init[L] = (N / 16) * L;
  __m512i V = _mm512_load_si512(Init);
  Timer T;
  T.start();
  for (int I = 0; I < Iters; ++I)
    V = _mm512_i32gather_epi32(V, Chase, 4);
  T.stop();
  alignas(64) std::int32_t Out[16];
  _mm512_store_si512(Out, V);
  if (Out[0] == 0x7fffffff)
    std::puts("");
  return static_cast<double>(T.nanoseconds()) / Iters / 16;
}
#endif

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Table VI - gather vs scalar load-to-use latency", Env);
  int Iters = static_cast<int>(Env.Opts.getInt("iters", 2000000));

  struct Level {
    const char *Name;
    std::int32_t Words;
  };
  // Working sets sized for typical L1 (32K), L2 (512K), L3 (8M+) caches.
  const Level Levels[] = {{"L1 (16KiB)", 4 * 1024},
                          {"L2 (256KiB)", 64 * 1024},
                          {"L3 (4MiB)", 1024 * 1024}};

  Table T({"config", Levels[0].Name, Levels[1].Name, Levels[2].Name});
  std::vector<std::vector<double>> Results;
  std::vector<std::string> Names;

  for (const Level &L : Levels) {
    AlignedBuffer<std::int32_t> Chase = makeChase(L.Words, 99);
    int ScaledIters =
        static_cast<int>(static_cast<std::int64_t>(Iters) * 4096 / L.Words) +
        1000;
    std::size_t Row = 0;
    auto Record = [&](const char *Name, double Ns) {
      if (Results.size() <= Row) {
        Results.emplace_back();
        Names.push_back(Name);
      }
      Results[Row++].push_back(Ns);
    };
    Record("Scalar1", scalarChains<1>(Chase.data(), L.Words, ScaledIters));
    Record("Scalar2", scalarChains<2>(Chase.data(), L.Words, ScaledIters));
    Record("Scalar4", scalarChains<4>(Chase.data(), L.Words, ScaledIters));
    Record("Scalar8", scalarChains<8>(Chase.data(), L.Words, ScaledIters));
    Record("Scalar16", scalarChains<16>(Chase.data(), L.Words, ScaledIters));
    Record("Scalar32", scalarChains<32>(Chase.data(), L.Words, ScaledIters));
#ifdef EGACS_HAVE_AVX2
    if (cpuInfo().HasAvx2)
      Record("AVX2 gather",
             avx2GatherChain(Chase.data(), L.Words, ScaledIters));
#endif
#ifdef EGACS_HAVE_AVX512
    if (cpuInfo().HasAvx512f)
      Record("AVX512 gather",
             avx512GatherChain(Chase.data(), L.Words, ScaledIters));
#endif
  }
  for (std::size_t Row = 0; Row < Results.size(); ++Row) {
    std::vector<std::string> Cells{Names[Row]};
    for (double Ns : Results[Row])
      Cells.push_back(Table::fmt(Ns, 2) + " ns");
    T.addRow(std::move(Cells));
  }
  T.print();
  std::printf("\npaper shape: per-word latency of batched independent "
              "scalar loads (Scalar8/16) beats the gather on out-of-order "
              "cores, because the gather retires only when its slowest lane "
              "arrives.\n");
  return 0;
}
