//===- bench/bench_fig9_gpu.cpp - Fig 9: CPU vs GPU -----------------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Fig 9: measured EGACS CPU time against the execution-driven
// P5000 cost model (src/gpusim), with and without host-device data
// transfers. The GPU numbers are model estimates, not silicon measurements
// — see DESIGN.md for the substitution.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gpusim/GpuModel.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::gpusim;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Fig 9 - CPU (measured) vs GPU (modelled)", Env);
  auto TS = Env.makeTs();
  TargetKind Target = bestTarget();

  Table T({"kernel", "graph", "CPU ms", "GPU ms", "GPU-noxfer ms",
           "GPU speedup", "noxfer speedup"});
  for (const Input &In : makeAllInputs(Env.Scale)) {
    for (KernelKind Kind : AllKernels) {
      KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
      double CpuMs =
          timeKernel(Kind, Target, In, Cfg, Env.Reps, Env.Verify);

      // Profile a single-task run for the model (same dynamic work).
      SerialTaskSystem OneTask;
      KernelConfig Prof = KernelConfig::allOptimizations(OneTask, 1);
      statsReset();
      KernelProfile Profile;
      Profile.Delta = profileKernel(Kind, Target, In, Prof);
      Profile.ProfiledWidth = dispatchTarget(
          Target, [&]<typename BK>() { return BK::Width; });
      Profile.NumTasks = 1;
      const Csr &G = graphFor(In, Kind);
      Profile.FootprintBytes =
          G.memoryFootprintBytes() +
          static_cast<std::uint64_t>(G.numNodes()) * 8;
      GpuEstimate Est = estimateGpuTime(Profile);

      T.addRow({kernelName(Kind), In.Name, Table::fmt(CpuMs),
                Table::fmt(Est.totalMs()), Table::fmt(Est.kernelMs()),
                Table::fmtSpeedup(CpuMs / Est.totalMs()),
                Table::fmtSpeedup(CpuMs / Est.kernelMs())});
    }
  }
  T.print();
  std::printf("\npaper shape: the GPU leads most configurations by ~1.5-2x "
              "once SIMD narrows the gap; transfers erase the edge for "
              "short kernels, and CAS-heavy MST favours the CPU. GPU "
              "columns are cost-model estimates (see DESIGN.md); the CPU "
              "column is wall-clock on this machine.\n");
  return 0;
}
