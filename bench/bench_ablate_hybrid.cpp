//===- bench/bench_ablate_hybrid.cpp - bfs-hb switch-point ablation -------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablation of the hybrid BFS density threshold: bfs-hb switches to dense
// (topology) rounds when the frontier exceeds |V| / HybridDenominator.
// Small denominators go dense early (cheap on low-diameter graphs, wasteful
// on roads); huge denominators never go dense, degenerating to bfs-cx.
//
//   $ bench_ablate_hybrid --scale=8 [--reps=3] [--json=out.json]
//   $ bench_ablate_hybrid --scale=5 --reps=1 --checkstats=1   # CI
//
// Both extreme columns run through verification (never-dense exercises the
// pure worklist path, always-dense the pure topology path). --checkstats=1
// adds one op-counted run per extreme and exits non-zero unless, on the
// rmat input, the always-dense configuration executes more gather lanes
// than the never-dense one (dense rounds rescan every node's distance per
// level; both styles push the same discovered frontier, so the scan cost
// is the observable difference).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  bool CheckStats = Env.Opts.getBool("checkstats", false);
  banner("ablation - bfs-hb hybrid threshold (default |V|/20)", Env);
  auto TS = Env.makeTs();
  TargetKind Target = bestTarget();

  JsonLog Json(Env);
  Json.meta("harness", "bench_ablate_hybrid");
  Json.meta("scale", std::to_string(Env.Scale));
  Json.meta("tasks", std::to_string(Env.NumTasks));
  Json.meta("target", targetName(Target));
  Json.setColumns({"input", "denom", "wall_ms", "items_pushed"});

  // One extra op-counted run for a checkstats extreme; dense rounds
  // gather every node's distance per level, so GatherOps separates the
  // two round styles where the push counters cannot (both styles
  // materialize the same next frontier).
  auto countedGathers = [&](const Input &In, int Denom) {
    KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
    Cfg.HybridDenominator = Denom;
    statsReset();
    setOpCounting(true);
    StatsSnapshot Before = StatsSnapshot::capture();
    timeKernel(KernelKind::BfsHb, Target, In, Cfg, 1, false);
    StatsSnapshot D = StatsSnapshot::capture() - Before;
    setOpCounting(false);
    return D.get(Stat::GatherOps);
  };

  // Dense when |frontier| > |V|/denom: denom=1 never goes dense,
  // denom=2^30 makes the threshold zero (always dense).
  Table T({"graph", "never dense", "denom=4", "denom=20", "denom=100",
           "always dense"});
  const int Denoms[] = {1, 4, 20, 100, 1 << 30};
  const int NumDenoms = static_cast<int>(sizeof(Denoms) / sizeof(Denoms[0]));
  bool ChecksOk = true;
  for (const Input &In : makeAllInputs(Env.Scale)) {
    std::vector<std::string> Cells{In.Name};
    std::uint64_t NeverPushed = 0, AlwaysPushed = 0;
    for (int DI = 0; DI < NumDenoms; ++DI) {
      int Denom = Denoms[DI];
      KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
      Cfg.HybridDenominator = Denom;
      // Verify both extremes: the two ends exercise disjoint round
      // implementations (pure worklist vs pure topology).
      bool Verify =
          Env.Verify && (DI == 0 || DI == NumDenoms - 1);
      statsReset();
      StatsSnapshot Before = StatsSnapshot::capture();
      double Ms = timeKernel(KernelKind::BfsHb, Target, In, Cfg, Env.Reps,
                             Verify);
      StatsSnapshot D = StatsSnapshot::capture() - Before;
      std::uint64_t Pushed =
          D.get(Stat::ItemsPushed) /
          static_cast<std::uint64_t>(Env.Reps + (Verify ? 1 : 0));
      if (DI == 0)
        NeverPushed = Pushed;
      if (DI == NumDenoms - 1)
        AlwaysPushed = Pushed;
      Cells.push_back(Table::fmt(Ms) + " ms");
      Json.record({In.Name, std::to_string(Denom), Table::fmt(Ms, 3),
                   Table::fmt(Pushed)});
    }
    if (CheckStats && In.Name == "rmat") {
      if (AlwaysPushed == 0 || NeverPushed == 0) {
        std::fprintf(stderr,
                     "error: --checkstats: bfs-hb pushed no worklist items "
                     "on rmat (always=%llu never=%llu)\n",
                     static_cast<unsigned long long>(AlwaysPushed),
                     static_cast<unsigned long long>(NeverPushed));
        ChecksOk = false;
      }
      std::uint64_t NeverGathers = countedGathers(In, Denoms[0]);
      std::uint64_t AlwaysGathers = countedGathers(In, Denoms[NumDenoms - 1]);
      if (AlwaysGathers <= NeverGathers) {
        std::fprintf(stderr,
                     "error: --checkstats: always-dense bfs-hb executed "
                     "%llu gather ops on rmat, never-dense %llu (dense "
                     "rounds must rescan distances)\n",
                     static_cast<unsigned long long>(AlwaysGathers),
                     static_cast<unsigned long long>(NeverGathers));
        ChecksOk = false;
      }
    }
    T.addRow(std::move(Cells));
  }
  T.print();
  std::printf("\ndesign note: always-dense wastes full rescans on the "
              "long-diameter road graph; low-diameter rmat/random tolerate "
              "(or prefer) earlier dense switching. The default |V|/20 is "
              "safe everywhere.\n");
  return ChecksOk ? 0 : 1;
}
