//===- bench/bench_ablate_hybrid.cpp - bfs-hb switch-point ablation -------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablation of the hybrid BFS density threshold: bfs-hb switches to dense
// (topology) rounds when the frontier exceeds |V| / HybridDenominator.
// Small denominators go dense early (cheap on low-diameter graphs, wasteful
// on roads); huge denominators never go dense, degenerating to bfs-cx.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("ablation - bfs-hb hybrid threshold (default |V|/20)", Env);
  auto TS = Env.makeTs();
  TargetKind Target = bestTarget();

  // Dense when |frontier| > |V|/denom: denom=1 never goes dense,
  // denom=2^30 makes the threshold zero (always dense).
  Table T({"graph", "never dense", "denom=4", "denom=20", "denom=100",
           "always dense"});
  const int Denoms[] = {1, 4, 20, 100, 1 << 30};
  for (const Input &In : makeAllInputs(Env.Scale)) {
    std::vector<std::string> Cells{In.Name};
    for (int Denom : Denoms) {
      KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
      Cfg.HybridDenominator = Denom;
      double Ms = timeKernel(KernelKind::BfsHb, Target, In, Cfg, Env.Reps,
                             Env.Verify && Denom == Denoms[0]);
      Cells.push_back(Table::fmt(Ms) + " ms");
    }
    T.addRow(std::move(Cells));
  }
  T.print();
  std::printf("\ndesign note: always-dense wastes full rescans on the "
              "long-diameter road graph; low-diameter rmat/random tolerate "
              "(or prefer) earlier dense switching. The default |V|/20 is "
              "safe everywhere.\n");
  return 0;
}
