//===- bench/bench_table4_utilization.cpp - Table IV: lane utilization ----===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Table IV: SIMD lane utilization of BFS-WL's inner (edge) loop
// and dynamic operation counts, unoptimized vs +NP+Fibers, on the road and
// rmat graphs. Paper: utilization rises from ~64%/32% to ~82%/84% and
// dynamic instructions drop sharply (18x for RMAT22).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Table IV - SIMD lane utilization of the BFS inner loop", Env);
  TargetKind Target = bestTarget();

  Table T({"graph", "config", "lane util %", "spmd ops", "ops vs unopt"});
  for (const char *Name : {"road", "rmat"}) {
    Input In = makeInput(Name, Env.Scale);
    double UnoptOps = 0.0;
    for (bool Optimized : {false, true}) {
      SerialTaskSystem TS; // single task isolates the utilization effect
      KernelConfig Cfg = Optimized
                             ? KernelConfig::allOptimizations(TS, 1)
                             : KernelConfig::unoptimized(TS, 1);
      statsReset();
      StatsSnapshot D = profileKernel(KernelKind::BfsWl, Target, In, Cfg);
      double Util =
          D.get(Stat::InnerTotalLanes)
              ? 100.0 * static_cast<double>(D.get(Stat::InnerActiveLanes)) /
                    static_cast<double>(D.get(Stat::InnerTotalLanes))
              : 0.0;
      double Ops = static_cast<double>(D.get(Stat::SpmdOps));
      if (!Optimized)
        UnoptOps = Ops;
      T.addRow({Name, Optimized ? "+NP+Fibers" : "unoptimized",
                Table::fmt(Util, 1),
                Table::fmt(static_cast<std::uint64_t>(Ops)),
                Table::fmt(UnoptOps > 0 ? Ops / UnoptOps : 1.0, 3)});
    }
  }
  T.print();
  std::printf("\npaper shape: optimization lifts utilization to >80%% on "
              "both graph classes and cuts dynamic operations, most on the "
              "skewed rmat input.\n");

  // Companion view: inter-task balance of the same sweep. Lane utilization
  // (above) is the intra-vector story; the chunk/steal counters and the
  // per-episode critical path are the inter-task story on the same inputs.
  std::printf("\n-- task balance (pr, %d tasks) --\n", Env.NumTasks);
  auto TS = Env.makeTs();
  Table B({"graph", "sched", "chunks", "stolen", "steal-fail",
           "crit-path ms", "balance %"});
  for (const char *Name : {"road", "rmat"}) {
    Input In = makeInput(Name, Env.Scale);
    for (SchedPolicy P :
         {SchedPolicy::Static, SchedPolicy::Chunked, SchedPolicy::Stealing}) {
      KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
      Cfg.Sched = P;
      Cfg.ChunkSize = Env.ChunkSize;
      Cfg.GuidedChunks = Env.Guided;
      Cfg.SchedInstrument = true;
      StatsSnapshot Before = StatsSnapshot::capture();
      runKernel(KernelKind::Pr, Target, graphFor(In, KernelKind::Pr), Cfg,
                In.Source);
      StatsSnapshot D = StatsSnapshot::capture() - Before;
      double Crit = static_cast<double>(D.get(Stat::SchedCriticalNanos));
      double Busy = static_cast<double>(D.get(Stat::SchedTaskNanos));
      // 100% = every task equally busy every episode; lower = stragglers.
      double Balance =
          Crit > 0.0 ? 100.0 * Busy / (Crit * Env.NumTasks) : 100.0;
      B.addRow({Name, schedPolicyName(P),
                Table::fmt(D.get(Stat::ChunksDispatched)),
                Table::fmt(D.get(Stat::ChunksStolen)),
                Table::fmt(D.get(Stat::StealFailures)),
                Table::fmt(Crit / 1e6, 2), Table::fmt(Balance, 1)});
    }
  }
  B.print();
  std::printf("\nchunked/stealing should raise balance %% (and cut the "
              "critical path) on the skewed rmat input; road is already "
              "balanced under static blocks.\n");
  return 0;
}
