//===- bench/bench_ablate_direction.cpp - Push/pull direction ablation ----===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablates the direction-optimizing traversal engine (worklist/
// BitmapFrontier.h plus the pull-direction kernels) over the
// direction-capable kernels x the three layouts x the paper's three graph
// classes, then sweeps the Beamer switch thresholds (alpha, beta) for the
// hybrid bfs-hb. Low-diameter power-law inputs (rmat) spend most of their
// traversal in a few huge frontiers where the pull direction's
// early-exiting in-neighbor scan beats the push direction's atomic-heavy
// frontier expansion; high-diameter road networks keep frontiers tiny and
// should stay in push mode (the hybrid's job is to notice both).
//
//   dir-sw    - runtime direction switches taken by the hybrid heuristic
//               (exactly 0 under --direction=push);
//   pull-edges/pull-exits - in-edges scanned by pull rounds and lanes
//               retired by the first-hit early exit;
//   conv      - sparse<->dense frontier conversions;
//   cas       - hardware compare-exchange attempts (pull pr must be 0);
//   crit ms   - scheduler critical-path CPU milliseconds.
//
//   $ bench_ablate_direction --scale=8 --tasks=8 [--reps=3] [--json=o.json]
//   $ bench_ablate_direction --scale=5 --reps=1 --tasks=8 --checkstats=1
//
// --checkstats=1 exits non-zero unless (a) every push row reports exactly
// zero pull-direction statistics (the op-count-neutrality guarantee), (b)
// on rmat the hybrid bfs kernels switch direction at least once and retire
// lanes through the pull early exit, (c) every pull/hybrid pr row issues
// exactly zero CAS attempts (the pull accumulation is atomic-free by
// construction), and (d) on rmat some pull or hybrid bfs-hb configuration
// beats its push critical path on at least one layout. Criterion (d) is
// skipped in TSan builds (instrumented gathers swamp the traversal);
// counter checks run in every build.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#if defined(__SANITIZE_THREAD__)
#define EGACS_BENCH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EGACS_BENCH_TSAN 1
#endif
#endif
#ifndef EGACS_BENCH_TSAN
#define EGACS_BENCH_TSAN 0
#endif

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

namespace {

struct Measurement {
  double WallMs = 0.0;
  std::uint64_t CritNs = 0;
  std::uint64_t Switches = 0;
  std::uint64_t PullEdges = 0;
  std::uint64_t PullExits = 0;
  std::uint64_t Conversions = 0;
  std::uint64_t Cas = 0;
};

Measurement measure(KernelKind Kind, TargetKind Target, const AnyLayout &L,
                    NodeId Source, const KernelConfig &Cfg, int Reps) {
  Measurement M;
  statsReset();
  StatsSnapshot Before = StatsSnapshot::capture();
  for (int R = 0; R < Reps; ++R)
    M.WallMs += timeMs([&] { runKernel(Kind, Target, L, Cfg, Source); });
  StatsSnapshot D = StatsSnapshot::capture() - Before;
  std::uint64_t UReps = static_cast<std::uint64_t>(Reps);
  M.WallMs /= Reps;
  M.CritNs = D.get(Stat::SchedCriticalNanos) / UReps;
  M.Switches = D.get(Stat::DirectionSwitches) / UReps;
  M.PullEdges = D.get(Stat::PullEdgesScanned) / UReps;
  M.PullExits = D.get(Stat::PullEarlyExits) / UReps;
  M.Conversions = D.get(Stat::FrontierConversions) / UReps;
  M.Cas = D.get(Stat::CasAttempts) / UReps;
  return M;
}

std::string critCell(std::uint64_t Ns, std::uint64_t BaseNs) {
  if (Ns == 0)
    return "-";
  std::string Cell = Table::fmt(static_cast<double>(Ns) / 1e6, 2);
  if (BaseNs > 0 && Ns != BaseNs) {
    double Rel = 100.0 * (static_cast<double>(Ns) /
                              static_cast<double>(BaseNs) -
                          1.0);
    Cell += Rel < 0.0 ? " (" : " (+";
    Cell += Table::fmt(Rel, 0) + "%)";
  }
  return Cell;
}

bool verifyOnce(KernelKind Kind, TargetKind Target, const Input &In,
                const AnyLayout &L, const KernelConfig &Cfg) {
  KernelOutput Out = runKernel(Kind, Target, L, Cfg, In.Source);
  if (verifyKernelOutput(Kind, In.G, In.Source, Out, Cfg))
    return true;
  std::fprintf(stderr, "error: %s on %s/%s --direction=%s failed "
                       "verification\n",
               kernelName(Kind), In.Name.c_str(),
               layoutName(Cfg.Layout), directionName(Cfg.Dir));
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  // The direction heuristic models a loaded multi-core traversal; keep at
  // least 8 tasks even on small CI boxes (crit-path is per-CPU anyway).
  if (Env.Opts.getInt("tasks", -1) < 0 && Env.NumTasks < 8)
    Env.NumTasks = 8;
  bool CheckStats = Env.Opts.getBool("checkstats", false);
  banner("direction ablation - push vs pull vs hybrid x layout, then "
         "alpha/beta sweep",
         Env);
  TargetKind Target = bestTarget();
  auto TS = Env.makeTs();
  std::int32_t Chunk = static_cast<std::int32_t>(targetWidth(Target));
  std::printf("target: %s (C=%d)\n\n", targetName(Target), Chunk);

  JsonLog Json(Env);
  Json.meta("harness", "bench_ablate_direction");
  Json.meta("scale", std::to_string(Env.Scale));
  Json.meta("tasks", std::to_string(Env.NumTasks));
  Json.meta("target", targetName(Target));
  Json.setColumns({"input", "kernel", "layout", "direction", "alpha", "beta",
                   "wall_ms", "crit_ms", "dir_switches", "pull_edges",
                   "pull_exits", "conversions", "cas"});

  // The kernels with a pull form: the two frontier BFS variants, the
  // label-propagation CC, and the dense pr round.
  const KernelKind Kernels[] = {KernelKind::BfsHb, KernelKind::BfsWl,
                                KernelKind::Cc, KernelKind::Pr};
  const Direction Dirs[] = {Direction::Push, Direction::Pull,
                            Direction::Hybrid};
  // Beamer thresholds around the GAP defaults (15, 18): alpha 1 barely
  // ever switches to pull, alpha 64 switches almost immediately; beta 2
  // bails back to push early, beta 64 stays dense to the end.
  const int Alphas[] = {1, 4, 15, 64};
  const int Betas[] = {2, 18, 64};

  bool ChecksOk = true;
  for (const Input &In : makeAllInputs(Env.Scale)) {
    std::printf("-- %s (%d nodes, %d arcs) --\n", In.Name.c_str(),
                In.G.numNodes(), In.G.numEdges());

    // Build each layout (and its transpose, used by the pull rounds) once,
    // outside the kernel timings.
    AnyLayout Layouts[NumLayoutKinds];
    for (int LI = 0; LI < NumLayoutKinds; ++LI) {
      LayoutOptions LOpts;
      LOpts.SellChunk = Chunk;
      LOpts.SellSigma = Env.SellSigma;
      Layouts[LI] = AnyLayout::build(AllLayoutKinds[LI], In.G, LOpts);
      Layouts[LI].buildTranspose(LOpts);
    }

    bool CritWin = false;         // pull/hybrid bfs-hb beat its push baseline
    std::uint64_t HybridBfsSwitches = 0, HybridBfsExits = 0;
    Table T({"kernel", "layout", "dir", "wall ms", "crit ms", "dir-sw",
             "pull-edges", "pull-exits", "conv", "cas"});
    for (KernelKind Kind : Kernels) {
      for (int LI = 0; LI < NumLayoutKinds; ++LI) {
        LayoutKind LK = AllLayoutKinds[LI];
        const AnyLayout &L = Layouts[LI];
        std::uint64_t PushCrit = 0;
        for (Direction Dir : Dirs) {
          KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
          Env.applySched(Cfg);
          Cfg.Layout = LK; // informational; L is prebuilt
          Cfg.Dir = Dir;
          Cfg.SchedInstrument = true;
          if (Env.Verify && !verifyOnce(Kind, Target, In, L, Cfg))
            return 1;

          Measurement M = measure(Kind, Target, L, In.Source, Cfg, Env.Reps);
          if (Dir == Direction::Push)
            PushCrit = M.CritNs;
          else if (Kind == KernelKind::BfsHb && M.CritNs > 0 &&
                   PushCrit > 0 && M.CritNs < PushCrit)
            CritWin = true;
          if (Dir == Direction::Hybrid &&
              (Kind == KernelKind::BfsHb || Kind == KernelKind::BfsWl)) {
            HybridBfsSwitches += M.Switches;
            HybridBfsExits += M.PullExits;
          }
          T.addRow({kernelName(Kind), layoutName(LK), directionName(Dir),
                    Table::fmt(M.WallMs, 2), critCell(M.CritNs, PushCrit),
                    Table::fmt(M.Switches), Table::fmt(M.PullEdges),
                    Table::fmt(M.PullExits), Table::fmt(M.Conversions),
                    Table::fmt(M.Cas)});
          Json.record({In.Name, kernelName(Kind), layoutName(LK),
                       directionName(Dir), std::to_string(Cfg.AlphaNum),
                       std::to_string(Cfg.BetaDenom), Table::fmt(M.WallMs, 3),
                       Table::fmt(static_cast<double>(M.CritNs) / 1e6, 3),
                       Table::fmt(M.Switches), Table::fmt(M.PullEdges),
                       Table::fmt(M.PullExits), Table::fmt(M.Conversions),
                       Table::fmt(M.Cas)});

          if (CheckStats && Dir == Direction::Push &&
              (M.Switches | M.PullEdges | M.PullExits | M.Conversions)) {
            std::fprintf(stderr,
                         "error: --checkstats: %s/%s/%s push run touched "
                         "pull statistics (sw=%llu edges=%llu exits=%llu "
                         "conv=%llu; want all 0)\n",
                         In.Name.c_str(), kernelName(Kind), layoutName(LK),
                         static_cast<unsigned long long>(M.Switches),
                         static_cast<unsigned long long>(M.PullEdges),
                         static_cast<unsigned long long>(M.PullExits),
                         static_cast<unsigned long long>(M.Conversions));
            ChecksOk = false;
          }
          if (CheckStats && Kind == KernelKind::Pr &&
              Dir != Direction::Push && M.Cas != 0) {
            std::fprintf(stderr,
                         "error: --checkstats: %s/pr/%s --direction=%s "
                         "issued %llu CAS attempts (pull accumulation must "
                         "be atomic-free)\n",
                         In.Name.c_str(), layoutName(LK), directionName(Dir),
                         static_cast<unsigned long long>(M.Cas));
            ChecksOk = false;
          }
        }
      }
    }
    T.print();
    std::printf("\n");

    // Alpha/beta sweep for the hybrid bfs-hb: how the switch thresholds
    // move the crossover on each input class.
    Table AB({"layout", "alpha", "beta", "wall ms", "crit ms", "dir-sw",
              "pull-edges", "conv"});
    for (int LI = 0; LI < NumLayoutKinds; ++LI) {
      LayoutKind LK = AllLayoutKinds[LI];
      for (int Alpha : Alphas) {
        for (int Beta : Betas) {
          KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
          Env.applySched(Cfg);
          Cfg.Layout = LK;
          Cfg.Dir = Direction::Hybrid;
          Cfg.AlphaNum = Alpha;
          Cfg.BetaDenom = Beta;
          Cfg.SchedInstrument = true;
          Measurement M = measure(KernelKind::BfsHb, Target, Layouts[LI],
                                  In.Source, Cfg, Env.Reps);
          AB.addRow({layoutName(LK), std::to_string(Alpha),
                     std::to_string(Beta), Table::fmt(M.WallMs, 2),
                     critCell(M.CritNs, 0), Table::fmt(M.Switches),
                     Table::fmt(M.PullEdges), Table::fmt(M.Conversions)});
          Json.record({In.Name, "bfs-hb", layoutName(LK), "hybrid",
                       std::to_string(Alpha), std::to_string(Beta),
                       Table::fmt(M.WallMs, 3),
                       Table::fmt(static_cast<double>(M.CritNs) / 1e6, 3),
                       Table::fmt(M.Switches), Table::fmt(M.PullEdges),
                       Table::fmt(M.PullExits), Table::fmt(M.Conversions),
                       Table::fmt(M.Cas)});
        }
      }
    }
    std::printf("hybrid bfs-hb alpha/beta sweep:\n");
    AB.print();
    std::printf("\n");

    if (CheckStats && In.Name == "rmat") {
      if (HybridBfsSwitches == 0 || HybridBfsExits == 0) {
        std::fprintf(stderr,
                     "error: --checkstats: hybrid bfs on rmat took %llu "
                     "direction switches with %llu pull early exits (want "
                     "both > 0)\n",
                     static_cast<unsigned long long>(HybridBfsSwitches),
                     static_cast<unsigned long long>(HybridBfsExits));
        ChecksOk = false;
      }
      if (!CritWin) {
#if EGACS_BENCH_TSAN
        std::fprintf(stderr,
                     "note: --checkstats: skipping the critical-path-win "
                     "criterion under TSan (instrumented gathers swamp the "
                     "traversal); counter checks still apply\n");
#else
        std::fprintf(stderr,
                     "error: --checkstats: neither pull nor hybrid bfs-hb "
                     "beat the push critical path on any rmat layout\n");
        ChecksOk = false;
#endif
      }
    }
  }
  std::printf(
      "expected shape: rmat's handful of huge frontiers make the pull "
      "direction's early-exiting in-neighbor scan cheaper than push's "
      "atomic frontier expansion, so hybrid switches into pull for the "
      "fat middle levels and wins; road's frontiers never grow past the "
      "alpha threshold, so hybrid correctly stays in push (forced pull "
      "loses badly there - every round scans all in-edges); pr's "
      "always-dense round makes pull a pure win: same arithmetic, zero "
      "CAS attempts.\n");
  return ChecksOk ? 0 : 1;
}
