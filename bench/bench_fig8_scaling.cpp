//===- bench/bench_fig8_scaling.cpp - Fig 8: core scalability -------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Fig 8: speedup over the serial version as tasks (cores) grow,
// geomean across the three inputs. On this container the hardware may
// expose a single core, in which case the curve is necessarily flat — the
// harness still exercises the full task range functionally.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Fig 8 - scalability with task count", Env);
  TargetKind Target = bestTarget();
  int MaxTasks = static_cast<int>(
      Env.Opts.getInt("max-tasks", std::max(2 * Env.NumTasks, 8)));

  std::vector<Input> Inputs = makeAllInputs(Env.Scale);
  std::vector<double> SerialMs;
  const KernelKind Kernels[] = {KernelKind::BfsWl, KernelKind::SsspNf,
                                KernelKind::Cc, KernelKind::Pr};
  for (const Input &In : Inputs)
    for (KernelKind Kind : Kernels)
      SerialMs.push_back(timeSerial(Kind, In, Env.Reps, Env.Verify));

  Table T({"tasks", "geomean speedup over serial"});
  for (int Tasks = 1; Tasks <= MaxTasks; Tasks *= 2) {
    auto TS = Env.makeTs(Tasks);
    double Geo = 0.0;
    int K = 0;
    std::size_t Idx = 0;
    for (const Input &In : Inputs)
      for (KernelKind Kind : Kernels) {
        KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Tasks);
        double Ms = timeKernel(Kind, Target, In, Cfg, Env.Reps, false);
        Geo += std::log(SerialMs[Idx++] / Ms);
        ++K;
      }
    T.addRow({Table::fmt(static_cast<std::uint64_t>(Tasks)),
              Table::fmtSpeedup(std::exp(Geo / K))});
  }
  T.print();
  std::printf("\npaper shape: near-linear scaling up to the physical core "
              "count (Intel 8c, AMD <=16c, Phi <=18c), flattening beyond; "
              "SIMD multiplies the per-core speedup.\n");
  return 0;
}
