//===- bench/bench_table2_launch.cpp - Table II: task launch overhead -----===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Reproduces Table II: time per launch of "empty" tasks, averaged over many
// continuous launches, for every task system. The paper launches as many
// tasks as hardware threads and finds pthread slowest and Cilk (here: the
// spin pool) fastest.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  banner("Table II - empty task launch overhead", Env);
  int Launches = static_cast<int>(Env.Opts.getInt("launches", 10000));

  Table T({"task system", "launches", "tasks", "us/launch"});
  const TaskSystemKind Kinds[] = {TaskSystemKind::Spawn, TaskSystemKind::Pool,
                                  TaskSystemKind::SpinPool};
  for (TaskSystemKind Kind : Kinds) {
    auto TS = makeTaskSystem(Kind, Env.NumTasks);
    // Spawning threads is orders of magnitude slower; keep runtime sane.
    int N = Kind == TaskSystemKind::Spawn ? Launches / 20 + 1 : Launches;
    // Warm up the pool (first launch creates/wakes workers).
    TS->launch(Env.NumTasks, [](int, int) {});
    Timer Tm;
    Tm.start();
    for (int I = 0; I < N; ++I)
      TS->launch(Env.NumTasks, [](int, int) {});
    Tm.stop();
    T.addRow({TS->name(), Table::fmt(static_cast<std::uint64_t>(N)),
              Table::fmt(static_cast<std::uint64_t>(Env.NumTasks)),
              Table::fmt(Tm.milliseconds() * 1000.0 / N, 3)});
  }
  T.print();
  std::printf("\npaper shape: spawn-per-launch slowest; persistent spinning "
              "team fastest.\n");
  return 0;
}
