//===- bench/bench_ablate_update.cpp - Update-engine policy ablation ------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Ablates the update-engine policy (sched/UpdateEngine.h) over the
// cmpxchg-heavy kernels x the paper's three graph classes. The paper names
// the "extensive use of cmpxchg" the CPU bottleneck of PR and MST; this
// harness measures how much of it each policy removes:
//
//   cas-att / cas-fail - hardware compare-exchange attempts issued by the
//                        CAS loops, and the ones that lost a race and
//                        retried;
//   saved              - lanes folded into a same-destination neighbour by
//                        in-vector conflict combining (each is one CAS
//                        chain not issued);
//   binned             - (dst, contribution) pairs staged by the Blocked
//                        policy's scatter phase;
//   sc-crit / mg-crit  - critical-path CPU milliseconds of the engine's
//                        scatter and merge phases (pr only; on an
//                        oversubscribed CI box wall clock cannot show the
//                        contention win, the per-episode critical path
//                        can).
//
// Privatized/Blocked apply to PR's commutative accumulation; the
// min-relaxation kernels (cc, sssp-nf, mst) degrade them to Combined, so
// only atomic/combined rows are shown for those.
//
//   $ bench_ablate_update --scale=10 --tasks=8 [--reps=3] [--verify=0]
//   $ bench_ablate_update --scale=5 --reps=1 --tasks=8 --checkstats=1  # CI
//
// --checkstats=1 exits non-zero unless, on the rmat input, (a) the CAS and
// combining counters are nonzero, and (b) Combined cuts pr's CAS attempts
// by at least 90% of the lanes it combined away (the measured
// duplicate-destination rate).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

namespace {

struct Measurement {
  double WallMs = 0.0;
  std::uint64_t CasAttempts = 0;
  std::uint64_t CasFailures = 0;
  std::uint64_t Saved = 0;
  std::uint64_t Binned = 0;
  std::uint64_t ScatterCritNs = 0;
  std::uint64_t MergeCritNs = 0;
};

Measurement measure(KernelKind Kind, TargetKind Target, const Input &In,
                    const KernelConfig &Cfg, int Reps) {
  const Csr &G = graphFor(In, Kind);
  Measurement M;
  statsReset();
  StatsSnapshot Before = StatsSnapshot::capture();
  for (int R = 0; R < Reps; ++R)
    M.WallMs += timeMs([&] { runKernel(Kind, Target, G, Cfg, In.Source); });
  StatsSnapshot D = StatsSnapshot::capture() - Before;
  std::uint64_t UReps = static_cast<std::uint64_t>(Reps);
  M.WallMs /= Reps;
  M.CasAttempts = D.get(Stat::CasAttempts) / UReps;
  M.CasFailures = D.get(Stat::CasFailures) / UReps;
  M.Saved = D.get(Stat::CombinedLanesSaved) / UReps;
  M.Binned = D.get(Stat::UpdatePairsBinned) / UReps;
  M.ScatterCritNs = D.get(Stat::UpdateScatterCritNanos) / UReps;
  M.MergeCritNs = D.get(Stat::UpdateMergeCritNanos) / UReps;
  return M;
}

std::string critCell(std::uint64_t Ns, std::uint64_t BaseNs) {
  if (Ns == 0)
    return "-";
  std::string Cell = Table::fmt(static_cast<double>(Ns) / 1e6, 2);
  if (BaseNs > 0 && Ns != BaseNs) {
    double Rel = 100.0 * (static_cast<double>(Ns) /
                              static_cast<double>(BaseNs) -
                          1.0);
    Cell += Rel < 0.0 ? " (" : " (+";
    Cell += Table::fmt(Rel, 0) + "%)";
  }
  return Cell;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  // Contention needs several tasks to show; default to 8 even on small CI
  // boxes (crit-path models the multi-core runtime either way).
  if (Env.Opts.getInt("tasks", -1) < 0 && Env.NumTasks < 8)
    Env.NumTasks = 8;
  bool CheckStats = Env.Opts.getBool("checkstats", false);
  banner("update-engine ablation - atomic vs combined vs privatized vs "
         "blocked",
         Env);
  TargetKind Target = bestTarget();
  auto TS = Env.makeTs();

  JsonLog Json(Env);
  Json.meta("harness", "bench_ablate_update");
  Json.meta("scale", std::to_string(Env.Scale));
  Json.meta("tasks", std::to_string(Env.NumTasks));
  Json.setColumns({"input", "kernel", "update", "wall_ms", "cas_att",
                   "cas_fail", "saved", "binned", "sc_crit_ms",
                   "mg_crit_ms"});

  const UpdatePolicy AllPolicies[] = {
      UpdatePolicy::Atomic, UpdatePolicy::Combined, UpdatePolicy::Privatized,
      UpdatePolicy::Blocked};
  const UpdatePolicy MinPolicies[] = {UpdatePolicy::Atomic,
                                      UpdatePolicy::Combined};
  const KernelKind Kernels[] = {KernelKind::Pr, KernelKind::Cc,
                                KernelKind::SsspNf, KernelKind::Mst};

  bool ChecksOk = true;
  for (const Input &In : makeAllInputs(Env.Scale)) {
    std::printf("-- %s (%d nodes, %d arcs) --\n", In.Name.c_str(),
                In.G.numNodes(), In.G.numEdges());
    Table T({"kernel", "update", "wall ms", "cas-att", "cas-fail", "saved",
             "binned", "sc-crit ms", "mg-crit ms"});
    for (KernelKind Kind : Kernels) {
      bool IsAccum = Kind == KernelKind::Pr;
      Measurement Atomic, Combined;
      std::uint64_t MinStagedCritNs = 0;
      const UpdatePolicy *Pols = IsAccum ? AllPolicies : MinPolicies;
      std::size_t NumPols = IsAccum ? 4 : 2;
      for (std::size_t PI = 0; PI < NumPols; ++PI) {
        UpdatePolicy P = Pols[PI];
        KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
        Env.applySched(Cfg);
        Cfg.Update = P;
        Cfg.SchedInstrument = true;

        if (Env.Verify) {
          const Csr &G = graphFor(In, Kind);
          KernelOutput Out = runKernel(Kind, Target, G, Cfg, In.Source);
          if (!verifyKernelOutput(Kind, G, In.Source, Out, Cfg)) {
            std::fprintf(stderr,
                         "error: %s on %s under %s failed verification\n",
                         kernelName(Kind), In.Name.c_str(),
                         updatePolicyName(P));
            return 1;
          }
        }

        Measurement M = measure(Kind, Target, In, Cfg, Env.Reps);
        if (P == UpdatePolicy::Atomic)
          Atomic = M;
        if (P == UpdatePolicy::Combined)
          Combined = M;
        if ((P == UpdatePolicy::Privatized || P == UpdatePolicy::Blocked) &&
            (MinStagedCritNs == 0 || M.ScatterCritNs < MinStagedCritNs))
          MinStagedCritNs = M.ScatterCritNs;

        T.addRow({kernelName(Kind), updatePolicyName(P),
                  Table::fmt(M.WallMs, 2), Table::fmt(M.CasAttempts),
                  Table::fmt(M.CasFailures), Table::fmt(M.Saved),
                  Table::fmt(M.Binned),
                  critCell(M.ScatterCritNs, Atomic.ScatterCritNs),
                  critCell(M.MergeCritNs, 0)});
        Json.record(
            {In.Name, kernelName(Kind), updatePolicyName(P),
             Table::fmt(M.WallMs, 3), Table::fmt(M.CasAttempts),
             Table::fmt(M.CasFailures), Table::fmt(M.Saved),
             Table::fmt(M.Binned),
             Table::fmt(static_cast<double>(M.ScatterCritNs) / 1e6, 3),
             Table::fmt(static_cast<double>(M.MergeCritNs) / 1e6, 3)});
      }

      if (CheckStats && IsAccum && In.Name == "rmat") {
        // (a) the new counters must be live.
        if (Atomic.CasAttempts == 0 || Combined.Saved == 0) {
          std::fprintf(stderr,
                       "error: --checkstats: pr/rmat counters are zero "
                       "(cas-att=%llu saved=%llu)\n",
                       static_cast<unsigned long long>(Atomic.CasAttempts),
                       static_cast<unsigned long long>(Combined.Saved));
          ChecksOk = false;
        }
        // (b) every combined-away lane is >= one CAS chain not issued, so
        // attempts must drop by >= ~the duplicate-destination rate (10%
        // slack for contention-retry noise).
        std::uint64_t Budget = Atomic.CasAttempts - (Combined.Saved * 9) / 10;
        if (Combined.CasAttempts > Budget) {
          std::fprintf(
              stderr,
              "error: --checkstats: combined pr CAS attempts %llu exceed "
              "atomic %llu - 0.9*saved %llu\n",
              static_cast<unsigned long long>(Combined.CasAttempts),
              static_cast<unsigned long long>(Atomic.CasAttempts),
              static_cast<unsigned long long>(Combined.Saved));
          ChecksOk = false;
        }
      }
      (void)MinStagedCritNs;
    }
    T.print();
    std::printf("\n");
  }
  std::printf(
      "expected shape: on rmat (power-law hubs => duplicate in-vector "
      "destinations) combined cuts pr/mst CAS attempts by the duplicate "
      "rate; privatized/blocked eliminate pr's scatter-phase CAS entirely "
      "and trade it for a cache-friendly merge pass; on road, duplicates "
      "are rare and atomic is already near-optimal.\n");
  return ChecksOk ? 0 : 1;
}
