#!/usr/bin/env bash
# Header self-sufficiency check: every header under src/ must compile as the
# sole include of a translation unit (no hidden dependencies on include
# order). Run from the repository root:
#
#   tools/check_headers.sh [compiler]
#
# Exits nonzero listing every header that fails.
set -u

CXX="${1:-${CXX:-g++}}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FAILED=0

for H in $(cd "$ROOT" && find src -name '*.h' | sort); do
  if ! "$CXX" -std=c++20 -fsyntax-only -I "$ROOT/src" \
      -include "$ROOT/$H" -x c++ /dev/null 2>/tmp/check_headers.err; then
    echo "NOT SELF-SUFFICIENT: $H"
    sed 's/^/    /' /tmp/check_headers.err | head -5
    FAILED=1
  fi
done

if [ "$FAILED" -eq 0 ]; then
  echo "All headers are self-sufficient."
fi
exit "$FAILED"
