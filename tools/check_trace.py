#!/usr/bin/env python3
"""Validate an EGACS Chrome/Perfetto trace file against tools/trace_schema.json.

Usage: check_trace.py TRACE.json [--schema SCHEMA.json] [--min-rounds N]

Checks, in order:
  1. The file parses as JSON and validates against the structural schema
     (a stdlib-only subset of JSON Schema: type/required/properties/enum/
     items/minimum -- exactly what the schema file uses).
  2. Every ph=X event has dur >= 0; every cat=round event satisfies the
     schema's roundArgs contract (round/frontier/direction/stats, plus the
     four perf keys when a perf object is present).
  3. Per (pid, tid), complete events are well nested: sorted by begin time,
     each event lies fully inside or fully outside every other.
  4. Optional: at least --min-rounds round events exist (CI smoke floor).

Exit codes: 0 valid, 1 validation failure, 2 usage/IO error.
"""

import argparse
import json
import os
import sys


def fail(msg):
    print("check_trace: FAIL: %s" % msg)
    raise SystemExit(1)


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    return True


def validate(value, schema, path):
    """Minimal JSON-Schema walker covering the keywords the schema uses."""
    expected = schema.get("type")
    if expected is not None and not type_ok(value, expected):
        fail("%s: expected %s, got %s" % (path, expected,
                                          type(value).__name__))
    if "enum" in schema and value not in schema["enum"]:
        fail("%s: %r not in %r" % (path, value, schema["enum"]))
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        fail("%s: %r < minimum %r" % (path, value, schema["minimum"]))
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail("%s: missing required key '%s'" % (path, key))
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, "%s.%s" % (path, key))
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], "%s[%d]" % (path, i))


def check_round_events(events, round_schema):
    rounds = 0
    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            continue
        where = "traceEvents[%d]" % i
        if ev.get("dur", 0) < 0:
            fail("%s: negative dur" % where)
        if ev.get("cat") != "round":
            continue
        rounds += 1
        args = ev.get("args")
        if not isinstance(args, dict):
            fail("%s: round event without args" % where)
        validate(args, round_schema, where + ".args")
        for stat, count in args["stats"].items():
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 0:
                fail("%s: stat %s is not a non-negative integer"
                     % (where, stat))
    return rounds


def check_nesting(events):
    """Complete events on one (pid, tid) row must be stack-disciplined."""
    rows = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        key = (ev.get("pid"), ev.get("tid", 0))
        begin = float(ev.get("ts", 0))
        rows.setdefault(key, []).append((begin, begin + float(ev.get("dur", 0)),
                                         ev.get("name", "?")))
    for key, spans in rows.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for begin, end, name in spans:
            while stack and begin >= stack[-1][0] - 1e-9:
                stack.pop()
            if stack and end > stack[-1][0] + 1e-9:
                fail("pid=%s tid=%s: '%s' [%f, %f] partially overlaps "
                     "'%s' ending at %f"
                     % (key[0], key[1], name, begin, end,
                        stack[-1][1], stack[-1][0]))
            stack.append((end, name))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(__file__),
                                         "trace_schema.json"))
    ap.add_argument("--min-rounds", type=int, default=0)
    opts = ap.parse_args()

    try:
        with open(opts.schema) as f:
            schema = json.load(f)
    except (OSError, ValueError) as e:
        print("check_trace: cannot load schema %s: %s" % (opts.schema, e))
        raise SystemExit(2)
    try:
        with open(opts.trace) as f:
            trace = json.load(f)
    except OSError as e:
        print("check_trace: cannot open %s: %s" % (opts.trace, e))
        raise SystemExit(2)
    except ValueError as e:
        fail("not valid JSON: %s" % e)

    validate(trace, schema, "$")
    events = trace["traceEvents"]
    rounds = check_round_events(events, schema["roundArgs"])
    check_nesting(events)
    if rounds < opts.min_rounds:
        fail("only %d round event(s), expected at least %d"
             % (rounds, opts.min_rounds))
    print("check_trace: OK: %d event(s), %d round(s), perfAvailable=%s"
          % (len(events), rounds,
             trace["otherData"]["perfAvailable"]))


if __name__ == "__main__":
    main()
