//===- tools/runKernel.cpp - Single-run kernel driver ---------------------===//
//
// Part of the EGACS project, a reproduction of "Efficient Execution of Graph
// Algorithms on CPU with SIMD Extensions" (CGO 2021).
//
// Runs one or more kernels once on one generated input, verifies the
// output, and prints a result table. The intended companion of the tracing
// subsystem: a single traced run per kernel, small enough to open in the
// Perfetto UI, without the repetition and sweeps of the bench_* harnesses.
//
//   $ runKernel                                  # every kernel on rmat
//   $ runKernel --input=road --kernel=bfs-hb,pr
//   $ runKernel --trace=out.json --direction=hybrid
//   $ runKernel --trace-summary --kernel=sssp-nf --scale=6
//
// Accepts every BenchCommon knob (--scale, --tasks, --sched, --layout,
// --direction, --trace, --trace-summary, ...) plus:
//
//   --input=S   road|rmat|random generated input (default rmat)
//   --kernel=S  comma-separated kernel list, or "all" (default all)
//   --target=S  SIMD target name, or "best" (default best)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace egacs;
using namespace egacs::bench;
using namespace egacs::simd;

namespace {

/// Splits a comma-separated --kernel list into kinds; "all" selects every
/// kernel in AllKernels order. Unknown names exit 2 via parseKernelKind.
std::vector<KernelKind> parseKernelList(const std::string &Spec) {
  std::vector<KernelKind> Kinds;
  if (Spec == "all") {
    for (KernelKind K : AllKernels)
      Kinds.push_back(K);
    return Kinds;
  }
  std::size_t Begin = 0;
  while (Begin <= Spec.size()) {
    std::size_t End = Spec.find(',', Begin);
    if (End == std::string::npos)
      End = Spec.size();
    if (End > Begin)
      Kinds.push_back(parseKernelKind(Spec.substr(Begin, End - Begin)));
    Begin = End + 1;
  }
  if (Kinds.empty())
    parseEnumFail("kernel", Spec, "all or a comma-separated kernel list");
  return Kinds;
}

TargetKind parseTargetOrBest(const std::string &Name) {
  if (Name == "best")
    return bestTarget();
  constexpr TargetKind Kinds[] = {
      TargetKind::Scalar1, TargetKind::Scalar4,   TargetKind::Scalar8,
      TargetKind::Scalar16, TargetKind::Avx2x4,   TargetKind::Avx2x8,
      TargetKind::Avx2x16, TargetKind::Avx512x8, TargetKind::Avx512x16,
  };
  std::string Valid = "best";
  for (TargetKind K : Kinds) {
    if (Name == targetName(K)) {
      if (!targetSupported(K))
        parseEnumFail("target", Name, "a target this CPU supports");
      return K;
    }
    Valid += "|";
    Valid += targetName(K);
  }
  parseEnumFail("target", Name, Valid);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  std::string InputName = Env.Opts.getString("input", "rmat");
  std::vector<KernelKind> Kinds =
      parseKernelList(Env.Opts.getString("kernel", "all"));
  TargetKind Target = parseTargetOrBest(Env.Opts.getString("target", "best"));

  banner("runKernel single-run driver", Env);
  Input In = makeInput(InputName, Env.Scale);
  std::printf("input: %s scale=%d (%lld nodes, %lld edges), target=%s\n\n",
              In.Name.c_str(), Env.Scale,
              static_cast<long long>(In.G.numNodes()),
              static_cast<long long>(In.G.numEdges()), targetName(Target));

  auto TS = Env.makeTs();
  JsonLog Json(Env);
  Json.meta("harness", "runKernel");
  Json.meta("input", InputName);
  Json.meta("scale", std::to_string(Env.Scale));
  Json.meta("target", targetName(Target));
  Json.setColumns({"kernel", "wall_ms", "verified"});

  Table T({"kernel", "wall ms", "verified"});
  bool AllOk = true;
  for (KernelKind Kind : Kinds) {
    const Csr &G = graphFor(In, Kind);
    KernelConfig Cfg = KernelConfig::allOptimizations(*TS, Env.NumTasks);
    Env.applySched(Cfg);
    double Ms =
        timeMs([&] { runKernel(Kind, Target, G, Cfg, In.Source); });
    bool Ok = true;
    if (Env.Verify) {
      // Verify on a separate untraced run so the traced timeline holds
      // exactly one run per kernel.
      KernelConfig VCfg = Cfg;
      VCfg.Trace = nullptr;
      KernelOutput Out = runKernel(Kind, Target, G, VCfg, In.Source);
      Ok = verifyKernelOutput(Kind, G, In.Source, Out, VCfg);
      if (!Ok) {
        std::fprintf(stderr, "error: %s on %s failed verification\n",
                     kernelName(Kind), In.Name.c_str());
        AllOk = false;
      }
    }
    T.addRow({kernelName(Kind), Table::fmt(Ms, 3),
              Env.Verify ? (Ok ? "yes" : "NO") : "skipped"});
    Json.record({kernelName(Kind), Table::fmt(Ms, 3),
                 Env.Verify ? (Ok ? "yes" : "no") : "skipped"});
  }
  T.print();
  return AllOk ? 0 : 1;
}
